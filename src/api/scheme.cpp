//===- api/scheme.cpp - Embedding API implementation -----------*- C++ -*-===//

#include "api/scheme.h"

#include "lib/prelude.h"
#include "reader/reader.h"
#include "runtime/printer.h"
#include "support/metrics.h"

#include <cstdio>

using namespace cmk;

namespace {

/// Fault injection targets the *running program*: hits accumulated while
/// reading or compiling would make site numbering depend on source size
/// and compiler internals. RAII so a real exhaustion mid-compile unwinds
/// cleanly through the pause.
struct FaultPause {
  FaultInjector &F;
  explicit FaultPause(FaultInjector &Inj) : F(Inj) { F.suspend(); }
  ~FaultPause() { F.resume(); }
};

} // namespace

EngineOptions EngineOptions::forVariant(EngineVariant V) {
  EngineOptions Opts;
  switch (V) {
  case EngineVariant::Builtin:
    break;
  case EngineVariant::NoOpt:
    Opts.CompilerOpts.EnableAttachments = false;
    break;
  case EngineVariant::NoPrim:
    Opts.CompilerOpts.EnablePrimRecognition = false;
    break;
  case EngineVariant::No1cc:
    Opts.VmCfg.EnableOneShots = false;
    break;
  case EngineVariant::Unmod:
    Opts.CompilerOpts.EnableAttachments = false;
    Opts.CompilerOpts.AttachmentConstraint = false;
    break;
  case EngineVariant::Imitate:
    Opts.CompilerOpts.UseImitationAttachments = true;
    break;
  case EngineVariant::MarkStack:
    Opts.VmCfg.MarkStackMode = true;
    Opts.CompilerOpts.MarkStackWcm = true;
    Opts.VmCfg.EnableOneShots = false;
    break;
  case EngineVariant::HeapFrames:
    Opts.VmCfg.HeapFrameMode = true;
    break;
  case EngineVariant::CopyOnCapture:
    Opts.VmCfg.CopyOnCapture = true;
    break;
  }
  return Opts;
}

SchemeEngine::SchemeEngine(const EngineOptions &Opts)
    : Machine(Opts.VmCfg),
      Comp(Machine.heap(), Machine.wellKnown(), Machine, Opts.CompilerOpts) {
  // Fault injection (CMARKS_FAULT_SPEC) targets user programs, not the
  // engine's own bootstrap: suspend it until the prelude is resident.
  Machine.faults().configureFromEnv();
  Machine.faults().suspend();
  if (Opts.CompilerOpts.UseImitationAttachments) {
    // The imitation library must exist before the prelude compiles, since
    // the prelude's with-continuation-mark forms expand into its calls.
    eval(imitationSource());
    CMK_CHECK(ok(), "imitation library failed to load");
    Machine.ImitationAtts =
        Machine.globalCell(Machine.heap().intern("#%imitate-atts"));
  }
  if (Opts.LoadPrelude) {
    eval(preludeSource());
    CMK_CHECK(ok(), "prelude failed to load");
  }
  Machine.faults().resume();
}

SchemeEngine::~SchemeEngine() = default;

Value SchemeEngine::eval(const std::string &Source) {
  LastError.clear();
  LastErrKind = ErrorKind::None;
  LastErrFatal = false;
  Heap &H = Machine.heap();

  // The reader and compiler allocate outside applyProcedure's recovery
  // scope, so a heap budget exhausted during read/compile surfaces here.
  try {
    // Read all forms up front (rooted), then compile+run one at a time.
    std::string ReadError;
    RootedValues Forms(H);
    {
      FaultPause Pause(Machine.faults());
      std::vector<Value> Raw = readAllFromString(H, Source, &ReadError);
      if (!ReadError.empty()) {
        LastError = "read error: " + ReadError;
        LastErrKind = ErrorKind::Runtime;
        return Value::undefined();
      }
      for (Value V : Raw)
        Forms.push(V);
    }

    GCRoot Result(H, Value::voidValue());
    for (size_t I = 0; I < Forms.size(); ++I) {
      GCRoot CodeRoot(H, Value::undefined());
      {
        FaultPause Pause(Machine.faults());
        std::string CompileError;
        Value Code = Comp.compileToplevel(Forms[I], &CompileError);
        if (!CompileError.empty()) {
          LastError = "compile error: " + CompileError;
          LastErrKind = ErrorKind::Runtime;
          return Value::undefined();
        }
        CodeRoot.set(Code);
        CodeRoot.set(H.makeClosure(CodeRoot.get(), 0));
      }
      Value Closure = CodeRoot.get();
      bool Ok = false;
      Value V = Machine.applyProcedure(Closure, nullptr, 0, Ok);
      if (!Ok) {
        LastError = Machine.errorMessage();
        LastErrKind = Machine.errorKind();
        LastErrFatal = Machine.errorFatal();
        Machine.clearError();
        return Value::undefined();
      }
      Result.set(V);
    }
    return Result.get();
  } catch (const ResourceExhausted &Ex) {
    LastError = Ex.What;
    LastErrKind = errorKindOf(Ex.Kind);
    LastErrFatal = true;
    Machine.clearError();
    return Value::undefined();
  }
}

std::string SchemeEngine::evalToString(const std::string &Source) {
  Value V = eval(Source);
  if (!ok())
    return "";
  return writeToString(V);
}

Value SchemeEngine::evalOrDie(const std::string &Source) {
  Value V = eval(Source);
  if (!ok()) {
    std::fprintf(stderr, "cmarks eval failed: %s\n", LastError.c_str());
    std::abort();
  }
  return V;
}

bool SchemeEngine::dumpTrace(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = Machine.trace().writeJson(F);
  std::fclose(F);
  return Ok;
}

bool SchemeEngine::dumpProfile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = Machine.profiler().writeCollapsed(F);
  std::fclose(F);
  return Ok;
}

std::string SchemeEngine::metricsText() const {
  MetricsRegistry R;
  Machine.fillMetrics(R);
  return R.prometheusText();
}

std::string SchemeEngine::metricsJson() const {
  MetricsRegistry R;
  Machine.fillMetrics(R);
  return R.json("engine");
}

Value SchemeEngine::apply(Value Fn, const std::vector<Value> &Args) {
  LastError.clear();
  LastErrKind = ErrorKind::None;
  LastErrFatal = false;
  bool Ok = false;
  Value V = Machine.applyProcedure(Fn, Args.data(),
                                   static_cast<uint32_t>(Args.size()), Ok);
  if (!Ok) {
    LastError = Machine.errorMessage();
    LastErrKind = Machine.errorKind();
    LastErrFatal = Machine.errorFatal();
    Machine.clearError();
    return Value::undefined();
  }
  return V;
}
