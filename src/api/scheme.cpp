//===- api/scheme.cpp - Embedding API implementation -----------*- C++ -*-===//

#include "api/scheme.h"

#include "lib/prelude.h"
#include "reader/reader.h"
#include "runtime/printer.h"

#include <cstdio>

using namespace cmk;

EngineOptions EngineOptions::forVariant(EngineVariant V) {
  EngineOptions Opts;
  switch (V) {
  case EngineVariant::Builtin:
    break;
  case EngineVariant::NoOpt:
    Opts.CompilerOpts.EnableAttachments = false;
    break;
  case EngineVariant::NoPrim:
    Opts.CompilerOpts.EnablePrimRecognition = false;
    break;
  case EngineVariant::No1cc:
    Opts.VmCfg.EnableOneShots = false;
    break;
  case EngineVariant::Unmod:
    Opts.CompilerOpts.EnableAttachments = false;
    Opts.CompilerOpts.AttachmentConstraint = false;
    break;
  case EngineVariant::Imitate:
    Opts.CompilerOpts.UseImitationAttachments = true;
    break;
  case EngineVariant::MarkStack:
    Opts.VmCfg.MarkStackMode = true;
    Opts.CompilerOpts.MarkStackWcm = true;
    Opts.VmCfg.EnableOneShots = false;
    break;
  case EngineVariant::HeapFrames:
    Opts.VmCfg.HeapFrameMode = true;
    break;
  case EngineVariant::CopyOnCapture:
    Opts.VmCfg.CopyOnCapture = true;
    break;
  }
  return Opts;
}

SchemeEngine::SchemeEngine(const EngineOptions &Opts)
    : Machine(Opts.VmCfg),
      Comp(Machine.heap(), Machine.wellKnown(), Machine, Opts.CompilerOpts) {
  if (Opts.CompilerOpts.UseImitationAttachments) {
    // The imitation library must exist before the prelude compiles, since
    // the prelude's with-continuation-mark forms expand into its calls.
    eval(imitationSource());
    CMK_CHECK(ok(), "imitation library failed to load");
    Machine.ImitationAtts =
        Machine.globalCell(Machine.heap().intern("#%imitate-atts"));
  }
  if (Opts.LoadPrelude) {
    eval(preludeSource());
    CMK_CHECK(ok(), "prelude failed to load");
  }
}

SchemeEngine::~SchemeEngine() = default;

Value SchemeEngine::eval(const std::string &Source) {
  LastError.clear();
  Heap &H = Machine.heap();

  // Read all forms up front (rooted), then compile+run one at a time.
  std::string ReadError;
  RootedValues Forms(H);
  {
    std::vector<Value> Raw = readAllFromString(H, Source, &ReadError);
    if (!ReadError.empty()) {
      LastError = "read error: " + ReadError;
      return Value::undefined();
    }
    for (Value V : Raw)
      Forms.push(V);
  }

  GCRoot Result(H, Value::voidValue());
  for (size_t I = 0; I < Forms.size(); ++I) {
    std::string CompileError;
    Value Code = Comp.compileToplevel(Forms[I], &CompileError);
    if (!CompileError.empty()) {
      LastError = "compile error: " + CompileError;
      return Value::undefined();
    }
    GCRoot CodeRoot(H, Code);
    Value Closure = H.makeClosure(CodeRoot.get(), 0);
    bool Ok = false;
    Value V = Machine.applyProcedure(Closure, nullptr, 0, Ok);
    if (!Ok) {
      LastError = Machine.errorMessage();
      Machine.clearError();
      return Value::undefined();
    }
    Result.set(V);
  }
  return Result.get();
}

std::string SchemeEngine::evalToString(const std::string &Source) {
  Value V = eval(Source);
  if (!ok())
    return "";
  return writeToString(V);
}

Value SchemeEngine::evalOrDie(const std::string &Source) {
  Value V = eval(Source);
  if (!ok()) {
    std::fprintf(stderr, "cmarks eval failed: %s\n", LastError.c_str());
    std::abort();
  }
  return V;
}

bool SchemeEngine::dumpTrace(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = Machine.trace().writeJson(F);
  std::fclose(F);
  return Ok;
}

Value SchemeEngine::apply(Value Fn, const std::vector<Value> &Args) {
  LastError.clear();
  bool Ok = false;
  Value V = Machine.applyProcedure(Fn, Args.data(),
                                   static_cast<uint32_t>(Args.size()), Ok);
  if (!Ok) {
    LastError = Machine.errorMessage();
    Machine.clearError();
    return Value::undefined();
  }
  return V;
}
