//===- api/scheme.cpp - Embedding API implementation -----------*- C++ -*-===//

#include "api/scheme.h"

#include "lib/prelude.h"
#include "reader/reader.h"
#include "runtime/printer.h"
#include "support/metrics.h"

#include <cstdio>

using namespace cmk;

namespace {

/// Fault injection targets the *running program*: hits accumulated while
/// reading or compiling would make site numbering depend on source size
/// and compiler internals. RAII so a real exhaustion mid-compile unwinds
/// cleanly through the pause.
struct FaultPause {
  FaultInjector &F;
  explicit FaultPause(FaultInjector &Inj) : F(Inj) { F.suspend(); }
  ~FaultPause() { F.resume(); }
};

} // namespace

EngineOptions EngineOptions::forVariant(EngineVariant V) {
  EngineOptions Opts;
  switch (V) {
  case EngineVariant::Builtin:
    break;
  case EngineVariant::NoOpt:
    Opts.CompilerOpts.EnableAttachments = false;
    break;
  case EngineVariant::NoPrim:
    Opts.CompilerOpts.EnablePrimRecognition = false;
    break;
  case EngineVariant::No1cc:
    Opts.VmCfg.EnableOneShots = false;
    break;
  case EngineVariant::Unmod:
    Opts.CompilerOpts.EnableAttachments = false;
    Opts.CompilerOpts.AttachmentConstraint = false;
    break;
  case EngineVariant::Imitate:
    Opts.CompilerOpts.UseImitationAttachments = true;
    break;
  case EngineVariant::MarkStack:
    Opts.VmCfg.MarkStackMode = true;
    Opts.CompilerOpts.MarkStackWcm = true;
    Opts.VmCfg.EnableOneShots = false;
    break;
  case EngineVariant::HeapFrames:
    Opts.VmCfg.HeapFrameMode = true;
    break;
  case EngineVariant::CopyOnCapture:
    Opts.VmCfg.CopyOnCapture = true;
    break;
  }
  return Opts;
}

SchemeEngine::SchemeEngine(const EngineOptions &Opts)
    : Machine(Opts.VmCfg),
      Comp(Machine.heap(), Machine.wellKnown(), Machine, Opts.CompilerOpts) {
  // Fault injection (CMARKS_FAULT_SPEC) targets user programs, not the
  // engine's own bootstrap: suspend it until the prelude is resident.
  Machine.faults().configureFromEnv();
  Machine.faults().suspend();
  if (Opts.CompilerOpts.UseImitationAttachments) {
    // The imitation library must exist before the prelude compiles, since
    // the prelude's with-continuation-mark forms expand into its calls.
    eval(imitationSource());
    CMK_CHECK(ok(), "imitation library failed to load");
    Machine.ImitationAtts =
        Machine.globalCell(Machine.heap().intern("#%imitate-atts"));
  }
  if (Opts.LoadPrelude) {
    eval(preludeSource());
    CMK_CHECK(ok(), "prelude failed to load");
  }
  Machine.faults().resume();
}

SchemeEngine::~SchemeEngine() = default;

Value SchemeEngine::eval(const std::string &Source) {
  LastError.clear();
  LastErrKind = ErrorKind::None;
  LastErrFatal = false;
  Heap &H = Machine.heap();

  // The reader and compiler allocate outside applyProcedure's recovery
  // scope, so a heap budget exhausted during read/compile surfaces here.
  try {
    // Read all forms up front (rooted), then compile+run one at a time.
    std::string ReadError;
    RootedValues Forms(H);
    {
      FaultPause Pause(Machine.faults());
      std::vector<Value> Raw = readAllFromString(H, Source, &ReadError);
      if (!ReadError.empty()) {
        LastError = "read error: " + ReadError;
        LastErrKind = ErrorKind::Runtime;
        return Value::undefined();
      }
      for (Value V : Raw)
        Forms.push(V);
    }

    GCRoot Result(H, Value::voidValue());
    for (size_t I = 0; I < Forms.size(); ++I) {
      GCRoot CodeRoot(H, Value::undefined());
      {
        FaultPause Pause(Machine.faults());
        std::string CompileError;
        Value Code = Comp.compileToplevel(Forms[I], &CompileError);
        if (!CompileError.empty()) {
          LastError = "compile error: " + CompileError;
          LastErrKind = ErrorKind::Runtime;
          return Value::undefined();
        }
        CodeRoot.set(Code);
        CodeRoot.set(H.makeClosure(CodeRoot.get(), 0));
      }
      Value Closure = CodeRoot.get();
      bool Ok = false;
      Value V = Machine.applyProcedure(Closure, nullptr, 0, Ok);
      if (!Ok) {
        LastError = Machine.errorMessage();
        LastErrKind = Machine.errorKind();
        LastErrFatal = Machine.errorFatal();
        Machine.clearError();
        return Value::undefined();
      }
      Result.set(V);
    }
    return Result.get();
  } catch (const ResourceExhausted &Ex) {
    LastError = Ex.What;
    LastErrKind = errorKindOf(Ex.Kind);
    LastErrFatal = true;
    Machine.clearError();
    return Value::undefined();
  }
}

std::string SchemeEngine::evalToString(const std::string &Source) {
  Value V = eval(Source);
  if (!ok())
    return "";
  return writeToString(V);
}

Value SchemeEngine::evalOrDie(const std::string &Source) {
  Value V = eval(Source);
  if (!ok()) {
    std::fprintf(stderr, "cmarks eval failed: %s\n", LastError.c_str());
    std::abort();
  }
  return V;
}

bool SchemeEngine::dumpTrace(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = Machine.trace().writeJson(F);
  std::fclose(F);
  return Ok;
}

bool SchemeEngine::dumpProfile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = Machine.profiler().writeCollapsed(F);
  std::fclose(F);
  return Ok;
}

std::string SchemeEngine::metricsText() const {
  MetricsRegistry R;
  Machine.fillMetrics(R);
  return R.prometheusText();
}

std::string SchemeEngine::metricsJson() const {
  MetricsRegistry R;
  Machine.fillMetrics(R);
  return R.json("engine");
}

uint64_t SchemeEngine::spawnFiberJob(const std::string &Source,
                                     uint64_t BudgetNs, uint64_t DeadlineNs,
                                     uint64_t DelayNs,
                                     std::string *CompileErr) {
  Heap &H = Machine.heap();
  FaultPause Pause(Machine.faults());
  std::string ReadError;
  RootedValues Forms(H);
  {
    std::vector<Value> Raw = readAllFromString(H, Source, &ReadError);
    if (!ReadError.empty()) {
      if (CompileErr)
        *CompileErr = "read error: " + ReadError;
      return 0;
    }
    for (Value V : Raw)
      Forms.push(V);
  }
  // Compile every toplevel form up front to a closure; the fiber runs the
  // list through the prelude's #%run-thunks when it is first scheduled.
  RootedValues Thunks(H);
  for (size_t I = 0; I < Forms.size(); ++I) {
    std::string CompileError;
    Value Code = Comp.compileToplevel(Forms[I], &CompileError);
    if (!CompileError.empty()) {
      if (CompileErr)
        *CompileErr = "compile error: " + CompileError;
      return 0;
    }
    GCRoot CodeRoot(H, Code);
    Thunks.push(H.makeClosure(CodeRoot.get(), 0));
  }
  GCRoot ThunkList(H, Value::nil());
  for (size_t I = Thunks.size(); I > 0; --I)
    ThunkList.set(H.makePair(Thunks[I - 1], ThunkList.get()));
  Value Runner = Machine.getGlobal("#%run-thunks");
  if (!Runner.isClosure()) {
    if (CompileErr)
      *CompileErr = "#%run-thunks is not defined (prelude not loaded)";
    return 0;
  }
  GCRoot ArgsList(H, H.makePair(ThunkList.get(), Value::nil()));
  Value FV = Machine.Fibers.spawnJob(Machine, Runner, ArgsList.get(),
                                     BudgetNs, DeadlineNs, DelayNs);
  return asFiber(FV)->Id;
}

Value SchemeEngine::runFiberSlice() {
  LastError.clear();
  LastErrKind = ErrorKind::None;
  LastErrFatal = false;
  Value Slice = Machine.getGlobal("#%fiber-slice");
  if (!Slice.isClosure()) {
    LastError = "#%fiber-slice is not defined (prelude not loaded)";
    LastErrKind = ErrorKind::Runtime;
    return Value::undefined();
  }
  bool Ok = false;
  Value V;
  try {
    V = Machine.applyProcedure(Slice, nullptr, 0, Ok);
  } catch (const ResourceExhausted &Ex) {
    LastError = Ex.What;
    LastErrKind = errorKindOf(Ex.Kind);
    LastErrFatal = true;
    Machine.clearError();
    return Value::undefined();
  }
  if (!Ok) {
    LastError = Machine.errorMessage();
    LastErrKind = Machine.errorKind();
    LastErrFatal = Machine.errorFatal();
    Machine.clearError();
    return Value::undefined();
  }
  return V;
}

std::vector<FiberJobInfo> SchemeEngine::takeFinishedFiberJobs() {
  std::vector<FiberJobInfo> Out;
  Value ExnSym = Machine.heap().intern("#%exn");
  for (Value FV : Machine.Fibers.takeDoneJobs()) {
    FiberObj *F = asFiber(FV);
    FiberJobInfo Info;
    Info.Id = F->Id;
    Info.Ok = !F->erred();
    Info.RunNs = F->RunNs;
    if (F->erred()) {
      // Thrown exn records carry their message at slot 1; anything else
      // thrown is reported by its written form.
      Value R = F->Result;
      if (R.isVector() && asVector(R)->Len > 1 &&
          asVector(R)->Elems[0] == ExnSym)
        Info.Output = displayToString(asVector(R)->Elems[1]);
      else if (R.isString())
        Info.Output = displayToString(R);
      else
        Info.Output = writeToString(R);
      if (F->ErrKindSym.isSymbol())
        Info.Kind = displayToString(F->ErrKindSym);
      else
        Info.Kind = "error";
    } else {
      Info.Output = writeToString(F->Result);
    }
    Out.push_back(std::move(Info));
  }
  return Out;
}

Value SchemeEngine::apply(Value Fn, const std::vector<Value> &Args) {
  LastError.clear();
  LastErrKind = ErrorKind::None;
  LastErrFatal = false;
  bool Ok = false;
  Value V = Machine.applyProcedure(Fn, Args.data(),
                                   static_cast<uint32_t>(Args.size()), Ok);
  if (!Ok) {
    LastError = Machine.errorMessage();
    LastErrKind = Machine.errorKind();
    LastErrFatal = Machine.errorFatal();
    Machine.clearError();
    return Value::undefined();
  }
  return V;
}
