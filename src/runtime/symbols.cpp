//===- runtime/symbols.cpp ------------------------------------*- C++ -*-===//

#include "runtime/symbols.h"

#include "runtime/heap.h"

using namespace cmk;

void WellKnown::init(Heap &H) {
  Quote = H.intern("quote");
  Lambda = H.intern("lambda");
  If = H.intern("if");
  Set = H.intern("set!");
  Begin = H.intern("begin");
  Let = H.intern("let");
  Letrec = H.intern("letrec");
  LetStar = H.intern("let*");
  Define = H.intern("define");
  Else = H.intern("else");
  Arrow = H.intern("=>");
  Cond = H.intern("cond");
  Case = H.intern("case");
  And = H.intern("and");
  Or = H.intern("or");
  When = H.intern("when");
  Unless = H.intern("unless");
  Do = H.intern("do");
  NamedLambda = H.intern("named-lambda");
  Quasiquote = H.intern("quasiquote");
  Unquote = H.intern("unquote");
  UnquoteSplicing = H.intern("unquote-splicing");
  DefineSyntaxRule = H.intern("define-syntax-rule");
  LetValues = H.intern("let-values");
  WhenDebug = H.intern("when-debug");
  CallSettingAttachment = H.intern("call-setting-continuation-attachment");
  CallGettingAttachment = H.intern("call-getting-continuation-attachment");
  CallConsumingAttachment = H.intern("call-consuming-continuation-attachment");
  CurrentAttachments = H.intern("current-continuation-attachments");
  WithContinuationMark = H.intern("with-continuation-mark");
  QuoteDot = H.intern(".");
  Ellipsis = H.intern("...");
}
