//===- runtime/equal.h - eqv? / equal? and hashing ------------*- C++ -*-===//

#ifndef CMARKS_RUNTIME_EQUAL_H
#define CMARKS_RUNTIME_EQUAL_H

#include "runtime/value.h"

namespace cmk {

/// Scheme eqv?: eq? plus numeric and character equivalence.
bool isEqv(Value A, Value B);

/// Scheme equal?: structural equality over pairs, strings, and vectors.
/// Recursion depth is bounded; deeply nested or cyclic structure falls back
/// to identity to guarantee termination.
bool isEqual(Value A, Value B);

/// Hash consistent with eq? (identity for heap objects, payload for
/// immediates and fixnums).
uint64_t eqHash(Value V);

/// Hash consistent with equal?.
uint64_t equalHash(Value V);

} // namespace cmk

#endif // CMARKS_RUNTIME_EQUAL_H
