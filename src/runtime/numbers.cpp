//===- runtime/numbers.cpp ------------------------------------*- C++ -*-===//

#include "runtime/numbers.h"

#include "runtime/heap.h"

#include <cmath>

using namespace cmk;

double cmk::toDouble(Value V) {
  if (V.isFixnum())
    return static_cast<double>(V.asFixnum());
  assert(V.isFlonum() && "toDouble on a non-number");
  return asFlonum(V)->Val;
}

static NumResult makeNum(Heap &H, double D) { return {H.makeFlonum(D), true}; }

static NumResult typeError() { return {Value::undefined(), false}; }

static NumResult divisionByZero() {
  return {Value::undefined(), false, "division by zero"};
}

/// True when \p V is an exact or inexact zero.
static bool isZero(Value V) {
  if (V.isFixnum())
    return V.asFixnum() == 0;
  return asFlonum(V)->Val == 0.0;
}

NumResult cmk::numAdd(Heap &H, Value A, Value B) {
  if (A.isFixnum() && B.isFixnum()) {
    int64_t R;
    if (!__builtin_add_overflow(A.asFixnum(), B.asFixnum(), &R) &&
        fitsFixnum(R))
      return {Value::fixnum(R), true};
    return makeNum(H, static_cast<double>(A.asFixnum()) +
                          static_cast<double>(B.asFixnum()));
  }
  if (A.isNumber() && B.isNumber())
    return makeNum(H, toDouble(A) + toDouble(B));
  return typeError();
}

NumResult cmk::numSub(Heap &H, Value A, Value B) {
  if (A.isFixnum() && B.isFixnum()) {
    int64_t R;
    if (!__builtin_sub_overflow(A.asFixnum(), B.asFixnum(), &R) &&
        fitsFixnum(R))
      return {Value::fixnum(R), true};
    return makeNum(H, static_cast<double>(A.asFixnum()) -
                          static_cast<double>(B.asFixnum()));
  }
  if (A.isNumber() && B.isNumber())
    return makeNum(H, toDouble(A) - toDouble(B));
  return typeError();
}

NumResult cmk::numMul(Heap &H, Value A, Value B) {
  if (A.isFixnum() && B.isFixnum()) {
    int64_t R;
    if (!__builtin_mul_overflow(A.asFixnum(), B.asFixnum(), &R) &&
        fitsFixnum(R))
      return {Value::fixnum(R), true};
    return makeNum(H, static_cast<double>(A.asFixnum()) *
                          static_cast<double>(B.asFixnum()));
  }
  if (A.isNumber() && B.isNumber())
    return makeNum(H, toDouble(A) * toDouble(B));
  return typeError();
}

NumResult cmk::numDiv(Heap &H, Value A, Value B) {
  if (!A.isNumber() || !B.isNumber())
    return typeError();
  // R7RS: flonum division is total -- (/ 1 0.0) is +inf.0, (/ 0.0 0.0) is
  // +nan.0. Only division by an *exact* zero is an error.
  if (B.isFixnum() && B.asFixnum() == 0)
    return divisionByZero();
  if (A.isFixnum() && B.isFixnum()) {
    int64_t AV = A.asFixnum(), BV = B.asFixnum();
    // most-negative-fixnum / -1 overflows the fixnum range; take the
    // flonum path below for the widened value.
    if (AV % BV == 0 && !(BV == -1 && AV == FixnumMin))
      return {Value::fixnum(AV / BV), true};
  }
  return makeNum(H, toDouble(A) / toDouble(B));
}

NumResult cmk::numQuotient(Heap &H, Value A, Value B) {
  if (!A.isNumber() || !B.isNumber())
    return typeError();
  if (isZero(B))
    return divisionByZero();
  if (A.isFixnum() && B.isFixnum()) {
    int64_t AV = A.asFixnum(), BV = B.asFixnum();
    // Guard the overflow case most-negative-fixnum / -1: its quotient
    // exceeds FixnumMax, so return the widened (flonum) value instead of
    // letting Value::fixnum silently wrap.
    if (!(BV == -1 && AV == FixnumMin))
      return {Value::fixnum(AV / BV), true};
  }
  return makeNum(H, std::trunc(toDouble(A) / toDouble(B)));
}

NumResult cmk::numRemainder(Heap &H, Value A, Value B) {
  if (!A.isNumber() || !B.isNumber())
    return typeError();
  if (isZero(B))
    return divisionByZero();
  if (A.isFixnum() && B.isFixnum()) {
    int64_t AV = A.asFixnum(), BV = B.asFixnum();
    // A % -1 is 0 for every A; answering directly also sidesteps the
    // most-negative-fixnum % -1 overflow corner of C++ '%'.
    if (BV == -1)
      return {Value::fixnum(0), true};
    return {Value::fixnum(AV % BV), true};
  }
  // Flonum remainder keeps the dividend's sign, like fmod.
  return makeNum(H, std::fmod(toDouble(A), toDouble(B)));
}

NumResult cmk::numModulo(Heap &H, Value A, Value B) {
  if (!A.isNumber() || !B.isNumber())
    return typeError();
  if (isZero(B))
    return divisionByZero();
  if (A.isFixnum() && B.isFixnum()) {
    int64_t AV = A.asFixnum(), BV = B.asFixnum();
    if (BV == -1) // See numRemainder; the adjustment below never applies.
      return {Value::fixnum(0), true};
    int64_t R = AV % BV;
    if (R != 0 && ((R < 0) != (BV < 0)))
      R += BV;
    return {Value::fixnum(R), true};
  }
  // Sign-of-divisor flonum modulo: fmod keeps the dividend's sign, so
  // shift by the divisor when the signs disagree -- (modulo 7.0 -2.0)
  // is -1.0, not the 1.0 that remainder gives.
  double AD = toDouble(A), BD = toDouble(B);
  double R = std::fmod(AD, BD);
  if (R != 0.0 && ((R < 0.0) != (BD < 0.0)))
    R += BD;
  return makeNum(H, R);
}

bool cmk::numCompare(Value A, Value B, int &CmpOut) {
  if (A.isFixnum() && B.isFixnum()) {
    int64_t AV = A.asFixnum(), BV = B.asFixnum();
    CmpOut = AV < BV ? -1 : (AV > BV ? 1 : 0);
    return true;
  }
  if (!A.isNumber() || !B.isNumber())
    return false;
  double AD = toDouble(A), BD = toDouble(B);
  if (std::isnan(AD) || std::isnan(BD)) {
    CmpOut = CmpUnordered; // NaN compares false under every operator.
    return true;
  }
  CmpOut = AD < BD ? -1 : (AD > BD ? 1 : 0);
  return true;
}

bool cmk::numEqv(Value A, Value B) {
  if (A.isFixnum() && B.isFixnum())
    return A == B;
  if (A.isFlonum() && B.isFlonum())
    return asFlonum(A)->Val == asFlonum(B)->Val;
  return false;
}
