//===- runtime/numbers.cpp ------------------------------------*- C++ -*-===//

#include "runtime/numbers.h"

#include "runtime/heap.h"

#include <cmath>

using namespace cmk;

double cmk::toDouble(Value V) {
  if (V.isFixnum())
    return static_cast<double>(V.asFixnum());
  assert(V.isFlonum() && "toDouble on a non-number");
  return asFlonum(V)->Val;
}

static NumResult makeNum(Heap &H, double D) { return {H.makeFlonum(D), true}; }

static NumResult typeError() { return {Value::undefined(), false}; }

NumResult cmk::numAdd(Heap &H, Value A, Value B) {
  if (A.isFixnum() && B.isFixnum()) {
    int64_t R;
    if (!__builtin_add_overflow(A.asFixnum(), B.asFixnum(), &R) &&
        fitsFixnum(R))
      return {Value::fixnum(R), true};
    return makeNum(H, static_cast<double>(A.asFixnum()) +
                          static_cast<double>(B.asFixnum()));
  }
  if (A.isNumber() && B.isNumber())
    return makeNum(H, toDouble(A) + toDouble(B));
  return typeError();
}

NumResult cmk::numSub(Heap &H, Value A, Value B) {
  if (A.isFixnum() && B.isFixnum()) {
    int64_t R;
    if (!__builtin_sub_overflow(A.asFixnum(), B.asFixnum(), &R) &&
        fitsFixnum(R))
      return {Value::fixnum(R), true};
    return makeNum(H, static_cast<double>(A.asFixnum()) -
                          static_cast<double>(B.asFixnum()));
  }
  if (A.isNumber() && B.isNumber())
    return makeNum(H, toDouble(A) - toDouble(B));
  return typeError();
}

NumResult cmk::numMul(Heap &H, Value A, Value B) {
  if (A.isFixnum() && B.isFixnum()) {
    int64_t R;
    if (!__builtin_mul_overflow(A.asFixnum(), B.asFixnum(), &R) &&
        fitsFixnum(R))
      return {Value::fixnum(R), true};
    return makeNum(H, static_cast<double>(A.asFixnum()) *
                          static_cast<double>(B.asFixnum()));
  }
  if (A.isNumber() && B.isNumber())
    return makeNum(H, toDouble(A) * toDouble(B));
  return typeError();
}

NumResult cmk::numDiv(Heap &H, Value A, Value B) {
  if (!A.isNumber() || !B.isNumber())
    return typeError();
  if (A.isFixnum() && B.isFixnum()) {
    int64_t BV = B.asFixnum();
    if (BV != 0 && A.asFixnum() % BV == 0)
      return {Value::fixnum(A.asFixnum() / BV), true};
  }
  double D = toDouble(B);
  if (D == 0.0)
    return typeError();
  return makeNum(H, toDouble(A) / D);
}

NumResult cmk::numQuotient(Heap &H, Value A, Value B) {
  if (A.isFixnum() && B.isFixnum() && B.asFixnum() != 0)
    return {Value::fixnum(A.asFixnum() / B.asFixnum()), true};
  if (A.isNumber() && B.isNumber() && toDouble(B) != 0.0)
    return makeNum(H, std::trunc(toDouble(A) / toDouble(B)));
  return typeError();
}

NumResult cmk::numRemainder(Heap &H, Value A, Value B) {
  if (A.isFixnum() && B.isFixnum() && B.asFixnum() != 0)
    return {Value::fixnum(A.asFixnum() % B.asFixnum()), true};
  if (A.isNumber() && B.isNumber() && toDouble(B) != 0.0)
    return makeNum(H, std::fmod(toDouble(A), toDouble(B)));
  return typeError();
}

NumResult cmk::numModulo(Heap &H, Value A, Value B) {
  if (A.isFixnum() && B.isFixnum() && B.asFixnum() != 0) {
    int64_t R = A.asFixnum() % B.asFixnum();
    if (R != 0 && ((R < 0) != (B.asFixnum() < 0)))
      R += B.asFixnum();
    return {Value::fixnum(R), true};
  }
  return numRemainder(H, A, B);
}

bool cmk::numCompare(Value A, Value B, int &CmpOut) {
  if (A.isFixnum() && B.isFixnum()) {
    int64_t AV = A.asFixnum(), BV = B.asFixnum();
    CmpOut = AV < BV ? -1 : (AV > BV ? 1 : 0);
    return true;
  }
  if (!A.isNumber() || !B.isNumber())
    return false;
  double AD = toDouble(A), BD = toDouble(B);
  CmpOut = AD < BD ? -1 : (AD > BD ? 1 : 0);
  return true;
}

bool cmk::numEqv(Value A, Value B) {
  if (A.isFixnum() && B.isFixnum())
    return A == B;
  if (A.isFlonum() && B.isFlonum())
    return asFlonum(A)->Val == asFlonum(B)->Val;
  return false;
}
