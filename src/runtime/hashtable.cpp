//===- runtime/hashtable.cpp ----------------------------------*- C++ -*-===//

#include "runtime/hashtable.h"

#include "runtime/equal.h"
#include "runtime/heap.h"

using namespace cmk;

// Slot encoding in the key vector: undefined = never used, eof = tombstone.

static bool keyMatches(Value A, Value B, bool EqualBased) {
  return EqualBased ? isEqual(A, B) : A == B;
}

static uint64_t keyHash(Value K, bool EqualBased) {
  return EqualBased ? equalHash(K) : eqHash(K);
}

/// Finds the slot holding \p Key, or the first insertable slot when absent.
/// Returns true if the key was found.
static bool findSlot(HashTableObj *T, Value Key, uint32_t &SlotOut) {
  bool EqualBased = T->H.Aux == 1;
  VectorObj *Keys = asVector(T->Keys);
  uint32_t Mask = T->CapMask;
  uint32_t I = static_cast<uint32_t>(keyHash(Key, EqualBased)) & Mask;
  uint32_t FirstTombstone = UINT32_MAX;
  for (uint32_t Probe = 0; Probe <= Mask; ++Probe) {
    Value K = Keys->Elems[I];
    if (K.isUndefined()) {
      SlotOut = FirstTombstone != UINT32_MAX ? FirstTombstone : I;
      return false;
    }
    if (K.isEof()) {
      if (FirstTombstone == UINT32_MAX)
        FirstTombstone = I;
    } else if (keyMatches(K, Key, EqualBased)) {
      SlotOut = I;
      return true;
    }
    I = (I + 1) & Mask;
  }
  CMK_CHECK(FirstTombstone != UINT32_MAX, "hash table has no free slot");
  SlotOut = FirstTombstone;
  return false;
}

static void grow(Heap &H, Value Table) {
  HashTableObj *T = asHashTable(Table);
  uint32_t OldCap = T->Keys.isNil() ? 0 : asVector(T->Keys)->Len;
  uint32_t NewCap = OldCap == 0 ? 8 : OldCap * 2;

  GCRoot OldKeys(H, T->Keys), OldVals(H, T->Vals), TableRoot(H, Table);
  Value NewKeys = H.makeVector(NewCap, Value::undefined());
  GCRoot NewKeysRoot(H, NewKeys);
  Value NewVals = H.makeVector(NewCap, Value::undefined());

  T = asHashTable(Table); // Re-fetch: allocation cannot move, but be tidy.
  T->Keys = NewKeys;
  T->Vals = NewVals;
  T->CapMask = NewCap - 1;
  T->Count = 0;

  if (OldCap == 0)
    return;
  VectorObj *OK = asVector(OldKeys.get());
  VectorObj *OV = asVector(OldVals.get());
  for (uint32_t I = 0; I < OldCap; ++I) {
    Value K = OK->Elems[I];
    if (K.isUndefined() || K.isEof())
      continue;
    uint32_t Slot;
    bool Found = findSlot(T, K, Slot);
    assert(!Found && "duplicate key during rehash");
    (void)Found;
    asVector(T->Keys)->Elems[Slot] = K;
    asVector(T->Vals)->Elems[Slot] = OV->Elems[I];
    ++T->Count;
  }
}

Value cmk::htGet(Value Table, Value Key, Value Default) {
  HashTableObj *T = asHashTable(Table);
  if (T->Keys.isNil())
    return Default;
  uint32_t Slot;
  if (!findSlot(T, Key, Slot))
    return Default;
  return asVector(T->Vals)->Elems[Slot];
}

void cmk::htSet(Heap &H, Value Table, Value Key, Value Val) {
  HashTableObj *T = asHashTable(Table);
  uint32_t Cap = T->Keys.isNil() ? 0 : asVector(T->Keys)->Len;
  if (Cap == 0 || (T->Count + 1) * 4 > Cap * 3) {
    GCRoot K(H, Key), V(H, Val);
    grow(H, Table);
    T = asHashTable(Table);
  }
  uint32_t Slot;
  if (findSlot(T, Key, Slot)) {
    asVector(T->Vals)->Elems[Slot] = Val;
    return;
  }
  asVector(T->Keys)->Elems[Slot] = Key;
  asVector(T->Vals)->Elems[Slot] = Val;
  ++T->Count;
}

bool cmk::htDelete(Value Table, Value Key) {
  HashTableObj *T = asHashTable(Table);
  if (T->Keys.isNil())
    return false;
  uint32_t Slot;
  if (!findSlot(T, Key, Slot))
    return false;
  asVector(T->Keys)->Elems[Slot] = Value::eof(); // Tombstone.
  asVector(T->Vals)->Elems[Slot] = Value::undefined();
  --T->Count;
  return true;
}

uint32_t cmk::htCount(Value Table) { return asHashTable(Table)->Count; }
