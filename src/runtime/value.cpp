//===- runtime/value.cpp - Tagged value helpers ----------------*- C++ -*-===//

#include "runtime/value.h"

using namespace cmk;

int64_t cmk::listLength(Value List) {
  int64_t N = 0;
  while (List.isPair()) {
    ++N;
    List = cdr(List);
  }
  return List.isNil() ? N : -1;
}

const char *cmk::stringData(Value V, uint32_t &LenOut) {
  if (V.isString()) {
    StringObj *S = asString(V);
    LenOut = S->Len;
    return S->Data;
  }
  if (V.isSymbol()) {
    SymbolObj *S = asSymbol(V);
    LenOut = S->Len;
    return S->Data;
  }
  LenOut = 0;
  return "";
}
