//===- runtime/printer.cpp ------------------------------------*- C++ -*-===//

#include "runtime/printer.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

using namespace cmk;

static void printRec(std::string &Out, Value V, bool Display, int Depth) {
  char Buf[64];
  if (Depth <= 0) {
    Out += "...";
    return;
  }
  if (V.isFixnum()) {
    std::snprintf(Buf, sizeof(Buf), "%" PRId64, V.asFixnum());
    Out += Buf;
    return;
  }
  if (V.isNil()) {
    Out += "()";
    return;
  }
  if (V.isTrue()) {
    Out += "#t";
    return;
  }
  if (V.isFalse()) {
    Out += "#f";
    return;
  }
  if (V.isVoid()) {
    Out += "#<void>";
    return;
  }
  if (V.isEof()) {
    Out += "#<eof>";
    return;
  }
  if (V.isUndefined()) {
    Out += "#<undefined>";
    return;
  }
  if (V.isUnderflowSentinel()) {
    Out += "#<underflow>";
    return;
  }
  if (V.isChar()) {
    uint32_t C = V.asChar();
    if (Display) {
      Out += static_cast<char>(C);
    } else if (C == ' ') {
      Out += "#\\space";
    } else if (C == '\n') {
      Out += "#\\newline";
    } else if (C == '\t') {
      Out += "#\\tab";
    } else {
      Out += "#\\";
      Out += static_cast<char>(C);
    }
    return;
  }

  switch (V.obj()->Kind) {
  case ObjKind::Pair: {
    Out += '(';
    Value P = V;
    bool First = true;
    while (P.isPair()) {
      if (!First)
        Out += ' ';
      First = false;
      printRec(Out, car(P), Display, Depth - 1);
      P = cdr(P);
    }
    if (!P.isNil()) {
      Out += " . ";
      printRec(Out, P, Display, Depth - 1);
    }
    Out += ')';
    return;
  }
  case ObjKind::String: {
    StringObj *S = asString(V);
    if (Display) {
      Out.append(S->Data, S->Len);
      return;
    }
    Out += '"';
    for (uint32_t I = 0; I < S->Len; ++I) {
      char C = S->Data[I];
      if (C == '"' || C == '\\')
        Out += '\\';
      if (C == '\n') {
        Out += "\\n";
        continue;
      }
      Out += C;
    }
    Out += '"';
    return;
  }
  case ObjKind::Symbol: {
    SymbolObj *S = asSymbol(V);
    Out.append(S->Data, S->Len);
    return;
  }
  case ObjKind::Vector: {
    VectorObj *Vec = asVector(V);
    Out += "#(";
    for (uint32_t I = 0; I < Vec->Len; ++I) {
      if (I)
        Out += ' ';
      printRec(Out, Vec->Elems[I], Display, Depth - 1);
    }
    Out += ')';
    return;
  }
  case ObjKind::Flonum: {
    double D = asFlonum(V)->Val;
    // Specials print in the R7RS spelling the reader accepts, not the
    // platform's "inf"/"nan" strings.
    if (std::isinf(D)) {
      Out += D > 0 ? "+inf.0" : "-inf.0";
      return;
    }
    if (std::isnan(D)) {
      Out += "+nan.0";
      return;
    }
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    Out += Buf;
    // Ensure flonums read back as flonums (e.g. "3" becomes "3.0").
    bool HasMarker = false;
    for (const char *P = Buf; *P; ++P)
      if (*P == '.' || *P == 'e' || *P == 'E' || *P == 'n' || *P == 'i')
        HasMarker = true;
    if (!HasMarker)
      Out += ".0";
    return;
  }
  case ObjKind::Closure: {
    Value Name = asCode(asClosure(V)->Code)->Name;
    Out += "#<procedure";
    if (Name.isSymbol()) {
      Out += ':';
      printRec(Out, Name, true, 2);
    }
    Out += '>';
    return;
  }
  case ObjKind::Native: {
    Out += "#<procedure:";
    printRec(Out, asNative(V)->Name, true, 2);
    Out += '>';
    return;
  }
  case ObjKind::Code:
    Out += "#<code>";
    return;
  case ObjKind::StackSeg:
    Out += "#<stack-segment>";
    return;
  case ObjKind::Cont:
    Out += "#<continuation>";
    return;
  case ObjKind::Box: {
    Out += "#&";
    printRec(Out, asBox(V)->Val, Display, Depth - 1);
    return;
  }
  case ObjKind::HashTable:
    Out += "#<hash-table>";
    return;
  case ObjKind::Record: {
    RecordObj *R = asRecord(V);
    Out += "#<";
    printRec(Out, R->TypeTag, true, 2);
    for (uint32_t I = 0; I < R->NumFields; ++I) {
      Out += ' ';
      printRec(Out, R->Fields[I], Display, Depth - 1);
    }
    Out += '>';
    return;
  }
  case ObjKind::MarkFrame:
    Out += "#<mark-frame>";
    return;
  case ObjKind::Winder:
    Out += "#<winder>";
    return;
  case ObjKind::Port:
    Out += "#<port>";
    return;
  case ObjKind::CompositeCont:
    Out += "#<composable-continuation>";
    return;
  case ObjKind::Parameter: {
    Out += "#<parameter:";
    printRec(Out, asParameter(V)->Name, true, 2);
    Out += '>';
    return;
  }
  case ObjKind::Fiber: {
    Out += "#<fiber:";
    Out += std::to_string(asFiber(V)->Id);
    Out += '>';
    return;
  }
  }
  CMK_UNREACHABLE("unhandled object kind in printer");
}

void cmk::printValue(std::string &Out, Value V, bool Display) {
  printRec(Out, V, Display, 64);
}

std::string cmk::writeToString(Value V) {
  std::string Out;
  printValue(Out, V, false);
  return Out;
}

std::string cmk::displayToString(Value V) {
  std::string Out;
  printValue(Out, V, true);
  return Out;
}
