//===- runtime/numbers.h - Generic numeric operations ---------*- C++ -*-===//
///
/// \file
/// Arithmetic over the fixnum/flonum tower. Fixnum operations that would
/// overflow the 61-bit payload flow into flonums, which keeps classic
/// benchmarks (fib, tak, fft) running without a bignum implementation.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_RUNTIME_NUMBERS_H
#define CMARKS_RUNTIME_NUMBERS_H

#include "runtime/value.h"

namespace cmk {

class Heap;

/// Result of a generic numeric operation; Ok is false on an error. Err
/// distinguishes non-type failures (a static string like "division by
/// zero"); nullptr means the generic "expected numbers" complaint.
struct NumResult {
  Value V;
  bool Ok;
  const char *Err = nullptr;
};

NumResult numAdd(Heap &H, Value A, Value B);
NumResult numSub(Heap &H, Value A, Value B);
NumResult numMul(Heap &H, Value A, Value B);
NumResult numDiv(Heap &H, Value A, Value B);      ///< Scheme `/`.
NumResult numQuotient(Heap &H, Value A, Value B); ///< Integer quotient.
NumResult numRemainder(Heap &H, Value A, Value B);
NumResult numModulo(Heap &H, Value A, Value B);

/// CmpOut value for IEEE-unordered comparisons (either side NaN). Every
/// numeric comparison operator is false for an unordered pair, so
/// consumers must treat this as "none of <, =, >" rather than matching
/// it against a sign test.
constexpr int CmpUnordered = 2;

/// Three-way comparison: -1, 0, 1 in *CmpOut, or CmpUnordered when
/// either operand is NaN; returns false on type error.
bool numCompare(Value A, Value B, int &CmpOut);

double toDouble(Value V);

/// Numeric equality for eqv?: exactness-sensitive like Scheme's eqv?.
bool numEqv(Value A, Value B);

} // namespace cmk

#endif // CMARKS_RUNTIME_NUMBERS_H
