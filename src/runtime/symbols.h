//===- runtime/symbols.h - Pre-interned well-known symbols ----*- C++ -*-===//
///
/// \file
/// A table of symbols the reader, expander, and compiler consult on hot
/// paths (core-form keywords, primitive names). Interning them once at
/// startup turns keyword recognition into pointer comparison.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_RUNTIME_SYMBOLS_H
#define CMARKS_RUNTIME_SYMBOLS_H

#include "runtime/value.h"

namespace cmk {

class Heap;

/// Well-known symbols, interned eagerly when a VM is created.
struct WellKnown {
  void init(Heap &H);

  // Core forms.
  Value Quote, Lambda, If, Set, Begin, Let, Letrec, LetStar, Define, Else,
      Arrow;
  // Derived forms handled by the expander.
  Value Cond, Case, And, Or, When, Unless, Do, NamedLambda, Quasiquote,
      Unquote, UnquoteSplicing, DefineSyntaxRule, LetValues, WhenDebug;
  // Attachment primitives recognized by the compiler (paper 7.1).
  Value CallSettingAttachment, CallGettingAttachment, CallConsumingAttachment,
      CurrentAttachments;
  // Marks layer forms.
  Value WithContinuationMark;
  // Misc runtime names.
  Value QuoteDot, Ellipsis;
};

} // namespace cmk

#endif // CMARKS_RUNTIME_SYMBOLS_H
