//===- runtime/equal.cpp --------------------------------------*- C++ -*-===//

#include "runtime/equal.h"

#include "runtime/numbers.h"

#include <cstring>

using namespace cmk;

bool cmk::isEqv(Value A, Value B) {
  if (A == B)
    return true;
  if (A.isNumber() && B.isNumber())
    return numEqv(A, B);
  return false;
}

static bool equalRec(Value A, Value B, int Depth) {
  if (isEqv(A, B))
    return true;
  if (Depth <= 0)
    return false;
  if (A.isPair() && B.isPair())
    return equalRec(car(A), car(B), Depth - 1) &&
           equalRec(cdr(A), cdr(B), Depth - 1);
  if (A.isString() && B.isString()) {
    StringObj *SA = asString(A), *SB = asString(B);
    return SA->Len == SB->Len && std::memcmp(SA->Data, SB->Data, SA->Len) == 0;
  }
  if (A.isVector() && B.isVector()) {
    VectorObj *VA = asVector(A), *VB = asVector(B);
    if (VA->Len != VB->Len)
      return false;
    for (uint32_t I = 0; I < VA->Len; ++I)
      if (!equalRec(VA->Elems[I], VB->Elems[I], Depth - 1))
        return false;
    return true;
  }
  return false;
}

bool cmk::isEqual(Value A, Value B) { return equalRec(A, B, 100000); }

uint64_t cmk::eqHash(Value V) {
  // Identity hash; mix the bits so consecutive pointers spread.
  uint64_t X = V.raw();
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  return X;
}

static uint64_t equalHashRec(Value V, int Depth) {
  if (V.isFixnum() || V.isImm())
    return eqHash(V);
  if (V.isSymbol())
    return asSymbol(V)->Hash;
  if (V.isString()) {
    StringObj *S = asString(V);
    uint64_t Hash = 1469598103934665603ull;
    for (uint32_t I = 0; I < S->Len; ++I) {
      Hash ^= static_cast<unsigned char>(S->Data[I]);
      Hash *= 1099511628211ull;
    }
    return Hash;
  }
  if (V.isFlonum()) {
    double D = asFlonum(V)->Val;
    uint64_t Bits;
    std::memcpy(&Bits, &D, sizeof(Bits));
    return eqHash(Value::fixnum(static_cast<int64_t>(Bits >> 3)));
  }
  if (Depth <= 0)
    return 0x9e3779b97f4a7c15ULL;
  if (V.isPair())
    return equalHashRec(car(V), Depth - 1) * 31 +
           equalHashRec(cdr(V), Depth - 1);
  if (V.isVector()) {
    VectorObj *Vec = asVector(V);
    uint64_t Hash = Vec->Len * 0x9e3779b97f4a7c15ULL;
    for (uint32_t I = 0; I < Vec->Len; ++I)
      Hash = Hash * 33 + equalHashRec(Vec->Elems[I], Depth - 1);
    return Hash;
  }
  return eqHash(V);
}

uint64_t cmk::equalHash(Value V) { return equalHashRec(V, 48); }
