//===- runtime/printer.h - write/display for Scheme values ----*- C++ -*-===//

#ifndef CMARKS_RUNTIME_PRINTER_H
#define CMARKS_RUNTIME_PRINTER_H

#include "runtime/value.h"

#include <string>

namespace cmk {

/// Appends the external representation of \p V to \p Out. \p Display
/// selects `display` style (strings unquoted, chars bare) over `write`.
void printValue(std::string &Out, Value V, bool Display);

/// Convenience: returns the `write` representation as a fresh string.
std::string writeToString(Value V);

/// Convenience: returns the `display` representation as a fresh string.
std::string displayToString(Value V);

} // namespace cmk

#endif // CMARKS_RUNTIME_PRINTER_H
