//===- runtime/hashtable.h - Mutable Scheme hash tables -------*- C++ -*-===//
///
/// \file
/// Open-addressing hash tables keyed by eq? or equal?. The key and value
/// arrays are ordinary Scheme vectors so the collector traces them without
/// special cases; an undefined key marks an empty slot.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_RUNTIME_HASHTABLE_H
#define CMARKS_RUNTIME_HASHTABLE_H

#include "runtime/value.h"

namespace cmk {

class Heap;

/// Returns the value for \p Key, or \p Default when absent.
Value htGet(Value Table, Value Key, Value Default);

/// Inserts or updates Key -> Val, growing the table as needed.
void htSet(Heap &H, Value Table, Value Key, Value Val);

/// Removes \p Key if present; returns true when a binding was removed.
bool htDelete(Value Table, Value Key);

/// Number of live bindings.
uint32_t htCount(Value Table);

/// Calls \p Fn for each binding. \p Fn must not mutate the table.
template <typename F> void htForEach(Value Table, F Fn) {
  HashTableObj *T = asHashTable(Table);
  if (T->Keys.isNil())
    return;
  VectorObj *Keys = asVector(T->Keys);
  VectorObj *Vals = asVector(T->Vals);
  for (uint32_t I = 0; I < Keys->Len; ++I)
    if (!Keys->Elems[I].isUndefined() && !Keys->Elems[I].isEof())
      Fn(Keys->Elems[I], Vals->Elems[I]);
}

} // namespace cmk

#endif // CMARKS_RUNTIME_HASHTABLE_H
