//===- runtime/value.h - Tagged Scheme values ------------------*- C++ -*-===//
///
/// \file
/// The uniform 64-bit tagged value representation used throughout the
/// cmarks runtime, plus the heap-object layouts for every object kind.
///
/// Tagging (low 3 bits):
///   000  fixnum, 61 bits of signed payload
///   001  heap pointer (allocations are 8-byte aligned)
///   010  immediate; bits 3..7 select the immediate kind, payload above bit 8
///
/// Heap objects begin with an ObjHeader carrying the kind, GC mark bit and
/// total allocation size, followed by a kind-specific payload (often with a
/// flexible trailing array).
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_RUNTIME_VALUE_H
#define CMARKS_RUNTIME_VALUE_H

#include "support/debug.h"

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace cmk {

class Value;

/// Discriminates every heap-allocated object kind in the runtime.
enum class ObjKind : uint8_t {
  Pair,
  String,
  Symbol,
  Vector,
  Flonum,
  Closure,
  Native,
  Code,
  StackSeg,
  Cont,      ///< Underflow record; doubles as a continuation procedure.
  Box,       ///< Single mutable cell (assignment-converted variables).
  HashTable, ///< Mutable eq?/equal? hash table.
  Record,    ///< Generic tagged record used by the library layer.
  MarkFrame, ///< Per-frame key/value dictionary of the marks layer (7.5).
  Winder,    ///< dynamic-wind frame; carries a marks field (footnote 4).
  Port,      ///< Output port (stdio stream or in-memory string).
  CompositeCont, ///< Composable (delimited) continuation slice list.
  Parameter, ///< Dynamic-binding parameter object (library layer).
  Fiber,     ///< Green thread: captured one-shot continuation + scheduler
             ///< state (DESIGN.md 16).
};

/// Common header of every heap object. The GC relies on SizeBytes to walk
/// allocation blocks during sweep and on the mark bit in Flags.
struct ObjHeader {
  ObjKind Kind;
  uint8_t Flags;
  uint16_t Aux;      ///< Small per-kind payload (e.g. continuation shot kind).
  uint32_t SizeBytes; ///< Total allocation size including this header.
};

static_assert(sizeof(ObjHeader) == 8, "header must stay one word");

namespace objflags {
inline constexpr uint8_t GCMark = 1 << 0;
inline constexpr uint8_t Immortal = 1 << 1; ///< Never swept (symbols).
/// StackSeg only: some full/promoted continuation record references this
/// segment, so the VM must never hand it back to the segment pool eagerly
/// (sweep still recycles it once it is unreachable).
inline constexpr uint8_t SegPinned = 1 << 2;
/// StackSeg only: the segment sits on the heap's recycling free list. Its
/// slots are dead (poisoned in sanitized builds) and must not be traced.
inline constexpr uint8_t SegPooled = 1 << 3;
} // namespace objflags

/// Immediate sub-kinds (Value tag 010).
enum class ImmKind : uint8_t {
  Nil = 0,
  False = 1,
  True = 2,
  Void = 3,
  Eof = 4,
  Undefined = 5, ///< Unbound-variable marker; never user-visible.
  Char = 6,
  UnderflowSentinel = 7, ///< Return-address marker for reified frames.
};

/// A single Scheme value: fixnum, immediate, or heap pointer.
class Value {
public:
  Value() : Bits(encodeImm(ImmKind::Undefined, 0)) {}

  // --- Constructors -------------------------------------------------------

  static Value fixnum(int64_t N) {
    return Value(static_cast<uint64_t>(N) << 3);
  }
  static Value fromObj(ObjHeader *O) {
    CMK_CHECK((reinterpret_cast<uintptr_t>(O) & 7) == 0,
              "heap object must be 8-byte aligned");
    return Value(reinterpret_cast<uint64_t>(O) | 1);
  }
  static Value nil() { return Value(encodeImm(ImmKind::Nil, 0)); }
  static Value False() { return Value(encodeImm(ImmKind::False, 0)); }
  static Value True() { return Value(encodeImm(ImmKind::True, 0)); }
  static Value boolean(bool B) { return B ? True() : False(); }
  static Value voidValue() { return Value(encodeImm(ImmKind::Void, 0)); }
  static Value eof() { return Value(encodeImm(ImmKind::Eof, 0)); }
  static Value undefined() { return Value(encodeImm(ImmKind::Undefined, 0)); }
  static Value character(uint32_t C) {
    return Value(encodeImm(ImmKind::Char, C));
  }
  /// The distinguished return address of the bottom frame of every stack
  /// segment; returning to it enters the underflow handler (paper 5).
  static Value underflowSentinel() {
    return Value(encodeImm(ImmKind::UnderflowSentinel, 0));
  }

  // --- Predicates ----------------------------------------------------------

  bool isFixnum() const { return (Bits & 7) == 0; }
  bool isObj() const { return (Bits & 7) == 1; }
  bool isImm() const { return (Bits & 7) == 2; }
  bool isNil() const { return Bits == encodeImm(ImmKind::Nil, 0); }
  bool isFalse() const { return Bits == encodeImm(ImmKind::False, 0); }
  bool isTrue() const { return Bits == encodeImm(ImmKind::True, 0); }
  bool isBoolean() const { return isFalse() || isTrue(); }
  bool isVoid() const { return Bits == encodeImm(ImmKind::Void, 0); }
  bool isEof() const { return Bits == encodeImm(ImmKind::Eof, 0); }
  bool isUndefined() const { return Bits == encodeImm(ImmKind::Undefined, 0); }
  bool isChar() const { return isImm() && immKind() == ImmKind::Char; }
  bool isUnderflowSentinel() const {
    return Bits == encodeImm(ImmKind::UnderflowSentinel, 0);
  }
  /// Everything except #f is truthy, as in Scheme.
  bool isTruthy() const { return !isFalse(); }

  bool isKind(ObjKind K) const { return isObj() && obj()->Kind == K; }
  bool isPair() const { return isKind(ObjKind::Pair); }
  bool isString() const { return isKind(ObjKind::String); }
  bool isSymbol() const { return isKind(ObjKind::Symbol); }
  bool isVector() const { return isKind(ObjKind::Vector); }
  bool isFlonum() const { return isKind(ObjKind::Flonum); }
  bool isClosure() const { return isKind(ObjKind::Closure); }
  bool isNative() const { return isKind(ObjKind::Native); }
  bool isCode() const { return isKind(ObjKind::Code); }
  bool isCont() const { return isKind(ObjKind::Cont); }
  bool isBox() const { return isKind(ObjKind::Box); }
  bool isHashTable() const { return isKind(ObjKind::HashTable); }
  bool isRecord() const { return isKind(ObjKind::Record); }
  bool isMarkFrame() const { return isKind(ObjKind::MarkFrame); }
  bool isPort() const { return isKind(ObjKind::Port); }
  bool isCompositeCont() const { return isKind(ObjKind::CompositeCont); }
  bool isParameter() const { return isKind(ObjKind::Parameter); }
  bool isFiber() const { return isKind(ObjKind::Fiber); }
  bool isNumber() const { return isFixnum() || isFlonum(); }
  /// True for every value that can be applied as a procedure.
  bool isProcedure() const {
    return isClosure() || isNative() || isCont() || isCompositeCont() ||
           isParameter();
  }

  // --- Accessors -----------------------------------------------------------

  int64_t asFixnum() const {
    assert(isFixnum() && "not a fixnum");
    return static_cast<int64_t>(Bits) >> 3;
  }
  uint32_t asChar() const {
    assert(isChar() && "not a character");
    return static_cast<uint32_t>(Bits >> 8);
  }
  ObjHeader *obj() const {
    assert(isObj() && "not a heap object");
    return reinterpret_cast<ObjHeader *>(Bits & ~uint64_t(7));
  }
  ImmKind immKind() const {
    assert(isImm() && "not an immediate");
    return static_cast<ImmKind>((Bits >> 3) & 31);
  }

  /// Identity (eq?) comparison: bit equality.
  bool operator==(Value Other) const { return Bits == Other.Bits; }
  bool operator!=(Value Other) const { return Bits != Other.Bits; }

  uint64_t raw() const { return Bits; }
  static Value fromRaw(uint64_t Raw) { return Value(Raw); }

private:
  explicit Value(uint64_t B) : Bits(B) {}

  static constexpr uint64_t encodeImm(ImmKind K, uint64_t Payload) {
    return (Payload << 8) | (static_cast<uint64_t>(K) << 3) | 2;
  }

  uint64_t Bits;
};

static_assert(sizeof(Value) == 8, "values are one machine word");

// --- Heap object layouts ---------------------------------------------------

struct Pair {
  ObjHeader H;
  Value Car;
  Value Cdr;
};

struct StringObj {
  ObjHeader H;
  uint32_t Len;
  uint32_t Pad;
  char Data[]; ///< Not NUL-terminated; Len bytes.
};

struct SymbolObj {
  ObjHeader H;
  uint64_t Hash; ///< Precomputed name hash, stable across runs.
  uint32_t Len;
  uint32_t Pad;
  char Data[];
};

struct VectorObj {
  ObjHeader H;
  uint32_t Len;
  uint32_t Pad;
  Value Elems[];
};

struct FlonumObj {
  ObjHeader H;
  double Val;
};

struct BoxObj {
  ObjHeader H;
  Value Val;
};

/// Compiled code. Instructions and the constant pool are stored inline so
/// the whole object is a single GC allocation; the constant pool is traced.
struct CodeObj {
  ObjHeader H;
  uint32_t NumArgs;
  uint32_t NumLocals; ///< Args plus let-bound slots.
  uint32_t FrameSize; ///< Upper bound on slots used by the frame.
  uint32_t NumConsts;
  uint32_t NumInstrs; ///< In bytes.
  uint32_t Flags;     ///< codeflags:: bits.
  Value Name;         ///< Symbol or #f, for diagnostics.
  // Trailing: Value Consts[NumConsts]; uint8_t Instrs[NumInstrs];
  Value *consts() { return reinterpret_cast<Value *>(this + 1); }
  uint8_t *instrs() {
    return reinterpret_cast<uint8_t *>(consts() + NumConsts);
  }
};

namespace codeflags {
inline constexpr uint32_t HasRestArg = 1 << 0;
} // namespace codeflags

struct ClosureObj {
  ObjHeader H;
  uint32_t NumFree;
  uint32_t Pad;
  Value Code; ///< A CodeObj value.
  Value Free[];
};

class VM;

/// C ABI of native primitives: receives the VM, argument array, and count.
/// On error the native calls VM::raiseError and returns undefined.
using NativeFn = Value (*)(VM &M, Value *Args, uint32_t NArgs);

struct NativeObj {
  ObjHeader H;
  NativeFn Fn;
  Value Name;
  int32_t MinArgs;
  int32_t MaxArgs; ///< -1 for variadic.
};

/// Number of header slots at the base of every frame:
/// [saved-fp, ret-code, ret-pc, closure].
inline constexpr uint32_t FrameHeaderSlots = 4;

/// A stack segment: a heap object holding frames. Frame layout (paper 5,
/// adapted): [saved-fp, ret-code, ret-pc, closure, args..., locals/temps...]
struct StackSegObj {
  ObjHeader H;
  uint32_t Capacity; ///< In value slots (may be < the chunk's true size
                     ///< when a recycled segment is reused smaller).
  /// Number of opportunistic underflow records whose [Lo,Hi) slice lives in
  /// this segment. Maintained by the VM's reify/underflow paths; a segment
  /// with zero refs and no SegPinned flag can be recycled the moment the
  /// VM vacates it, without waiting for a collection.
  uint32_t RecordRefs;
  Value Slots[];
};

/// Continuation shot kinds (paper 6). Opportunistic one-shots are created by
/// reification-for-marks and stack overflow; call/cc promotes to Full.
enum class ContShot : uint16_t {
  Opportunistic = 0,
  Full = 1,
};

/// An underflow record (paper 5/6). Represents "the rest of the
/// continuation": a slice [Lo, Hi) of frames in Seg, the return address of
/// the frame that was split off, the marks of the rest of the continuation
/// (the extra pointer the paper adds), and the next record in the chain.
struct ContObj {
  ObjHeader H; ///< Aux holds the ContShot kind.
  Value Seg;
  uint32_t Lo;    ///< Start of captured frame slice in Seg.
  uint32_t Hi;    ///< One past the end (== caller sp at the split).
  uint32_t RetFp; ///< Frame pointer to restore (index into Seg).
  uint32_t MarkHeight; ///< Mark-stack height at the split (MarkStackMode).
  Value RetCode; ///< Code to resume (or underflow sentinel at stack bottom).
  Value RetPc;   ///< Fixnum resume offset.
  Value Marks;   ///< Attachment list of the rest of the continuation.
  Value Winders; ///< dynamic-wind chain of the rest of the continuation.
  Value Next;    ///< Next ContObj, or nil at the process bottom.
  Value PromptTag; ///< Tag if this record is a prompt boundary, else #f.
  Value MarkStackCopy; ///< Vector copy of the mark stack (MarkStackMode
                       ///< call/cc capture only), else #f.

  ContShot shot() const { return static_cast<ContShot>(H.Aux & 0xFF); }
  void setShot(ContShot S) {
    H.Aux = (H.Aux & ~uint16_t(0xFF)) | static_cast<uint16_t>(S);
  }

  /// Explicit one-shot continuations (call/1cc): using one twice is an
  /// error, unlike the internal opportunistic records.
  bool isExplicitOneShot() const { return (H.Aux & 0x100) != 0; }
  void setExplicitOneShot() { H.Aux |= 0x100; }
  bool isUsed() const { return (H.Aux & 0x200) != 0; }
  void setUsed() { H.Aux |= 0x200; }
};

struct HashTableObj {
  ObjHeader H; ///< Aux: 0 = eq?, 1 = equal?.
  uint32_t Count;
  uint32_t CapMask; ///< Capacity - 1 (capacity is a power of two).
  Value Keys;       ///< Vector of keys (undefined marks an empty slot).
  Value Vals;       ///< Vector of values.
};

struct RecordObj {
  ObjHeader H;
  uint32_t NumFields;
  uint32_t Pad;
  Value TypeTag; ///< Usually an interned symbol naming the record type.
  Value Fields[];
};

/// The attachment value installed by with-continuation-mark (paper 7.5).
/// Evolves from a single key/value pair to a small immutable dictionary;
/// the cache fields implement the N/2 path-compression of
/// continuation-mark-set-first and are validated against the list tail they
/// were computed for, so sharing a MarkFrame between mark chains is sound.
struct MarkFrameObj {
  ObjHeader H; ///< Aux bit 0: cache valid.
  uint32_t NumEntries;
  uint32_t Pad;
  Value CacheKey;  ///< Key whose downward search result is cached.
  Value CacheVal;  ///< Cached result (undefined encodes "not found").
  Value CacheTail; ///< The list tail the cache was computed against.
  Value Entries[]; ///< Alternating key/value, 2 * NumEntries slots.
};

/// dynamic-wind frame. Footnote 4: a winder record must also save the marks
/// of the dynamic-wind call's continuation, restored while winding.
struct WinderObj {
  ObjHeader H;
  Value Before;
  Value After;
  Value Marks;
  Value Next;
};

struct PortObj {
  ObjHeader H; ///< Aux: 0 = stdio stream, 1 = string buffer.
  void *Stream; ///< FILE* when Aux == 0, std::string* when Aux == 1.
  Value Name;
};

/// A composable continuation captured up to a prompt: an immutable vector
/// of underflow records (innermost first) that is replayed on application.
struct CompositeContObj {
  ObjHeader H;
  uint32_t NumRecords;
  uint32_t Pad;
  Value BoundaryMarks; ///< Marks register value at the prompt boundary.
  /// Winder chain at the capture point. The slice down to (but excluding)
  /// BoundaryWinders is the dynamic-wind extents the captured slice sits
  /// inside; re-applying the continuation re-enters them (the prelude's
  /// composable wrapper runs the before thunks and pushes fresh winders).
  Value Winders;
  Value BoundaryWinders; ///< Winder chain at the prompt boundary.
  Value Records[];
};

/// A parameter object (library layer): applied with no arguments it reads
/// the innermost dynamic binding via the marks layer.
struct ParameterObj {
  ObjHeader H;
  Value Key;     ///< Unique key used in mark frames.
  Value Default; ///< Value when no dynamic binding is present.
  Value Guard;   ///< Converter procedure or #f.
  Value Name;
};

/// Scheduler states of a fiber (vm/fibers.h). A fiber is born Fresh,
/// becomes Runnable when enqueued, Running while it owns the engine,
/// Parked while suspended on a wait (its continuation captured in Cont),
/// and Done exactly once.
enum class FiberState : uint16_t {
  Fresh = 0,
  Runnable = 1,
  Running = 2,
  Parked = 3,
  Done = 4,
};

/// A green thread: a captured one-shot continuation plus the scheduler
/// bookkeeping to suspend and resume it. The mark and winder context of
/// the fiber rides inside the captured record chain, so switching fibers
/// isolates marks/winders for free (the registers are restored from the
/// record on resume, and a fresh fiber boots on an empty halt record).
struct FiberObj {
  ObjHeader H; ///< Aux bits 0-2: FiberState; bit 3: finished with an error.
  uint64_t Id;
  uint64_t DueNs;    ///< Absolute steady-clock wake time while timed-parked
                     ///< (0 = untimed).
  uint64_t RunNs;    ///< Accumulated on-CPU time; excludes parked time.
  uint64_t BudgetNs; ///< Remaining run-time budget (0 = unlimited). Armed
                     ///< as the VM deadline at each switch-in, so a parked
                     ///< fiber never burns its timeout budget.
  uint64_t JobDeadlineNs; ///< Absolute wall-clock pool-job deadline (0=none).
  Value Thunk;      ///< Entry procedure (only meaningful while Fresh).
  Value ArgsList;   ///< Argument list for Thunk.
  Value Cont;       ///< Captured continuation while Parked/Runnable-resumed.
  Value ResumeVal;  ///< Value the parked capture receives on resume.
  Value Result;     ///< Final value, or the error payload when erred.
  Value ErrKindSym; ///< 'timeout | 'interrupt | 'heap-limit | 'stack-limit
                    ///< | 'error when erred, else #f.
  Value Joiners;    ///< List of fibers parked in (fiber-join this).

  FiberState state() const { return static_cast<FiberState>(H.Aux & 7); }
  void setState(FiberState S) {
    H.Aux = (H.Aux & ~uint16_t(7)) | static_cast<uint16_t>(S);
  }
  bool erred() const { return (H.Aux & 8) != 0; }
  void setErred() { H.Aux |= 8; }
  /// Pool-job fibers retire the slice when they finish and are queued for
  /// collection by the pool worker (support/pool.cpp).
  bool isJob() const { return (H.Aux & 16) != 0; }
  void setJob() { H.Aux |= 16; }
};

// --- Casting helpers -------------------------------------------------------

template <typename T> T *objCast(Value V, ObjKind K) {
  assert(V.isKind(K) && "object kind mismatch");
  return reinterpret_cast<T *>(V.obj());
}

inline Pair *asPair(Value V) { return objCast<Pair>(V, ObjKind::Pair); }
inline StringObj *asString(Value V) {
  return objCast<StringObj>(V, ObjKind::String);
}
inline SymbolObj *asSymbol(Value V) {
  return objCast<SymbolObj>(V, ObjKind::Symbol);
}
inline VectorObj *asVector(Value V) {
  return objCast<VectorObj>(V, ObjKind::Vector);
}
inline FlonumObj *asFlonum(Value V) {
  return objCast<FlonumObj>(V, ObjKind::Flonum);
}
inline ClosureObj *asClosure(Value V) {
  return objCast<ClosureObj>(V, ObjKind::Closure);
}
inline NativeObj *asNative(Value V) {
  return objCast<NativeObj>(V, ObjKind::Native);
}
inline CodeObj *asCode(Value V) { return objCast<CodeObj>(V, ObjKind::Code); }
inline StackSegObj *asStackSeg(Value V) {
  return objCast<StackSegObj>(V, ObjKind::StackSeg);
}
inline ContObj *asCont(Value V) { return objCast<ContObj>(V, ObjKind::Cont); }
inline BoxObj *asBox(Value V) { return objCast<BoxObj>(V, ObjKind::Box); }
inline HashTableObj *asHashTable(Value V) {
  return objCast<HashTableObj>(V, ObjKind::HashTable);
}
inline RecordObj *asRecord(Value V) {
  return objCast<RecordObj>(V, ObjKind::Record);
}
inline MarkFrameObj *asMarkFrame(Value V) {
  return objCast<MarkFrameObj>(V, ObjKind::MarkFrame);
}
inline WinderObj *asWinder(Value V) {
  return objCast<WinderObj>(V, ObjKind::Winder);
}
inline PortObj *asPort(Value V) { return objCast<PortObj>(V, ObjKind::Port); }
inline CompositeContObj *asCompositeCont(Value V) {
  return objCast<CompositeContObj>(V, ObjKind::CompositeCont);
}
inline ParameterObj *asParameter(Value V) {
  return objCast<ParameterObj>(V, ObjKind::Parameter);
}
inline FiberObj *asFiber(Value V) {
  return objCast<FiberObj>(V, ObjKind::Fiber);
}

// --- Convenience accessors --------------------------------------------------

inline Value car(Value V) { return asPair(V)->Car; }
inline Value cdr(Value V) { return asPair(V)->Cdr; }

/// Returns the number of pairs in a proper list; -1 for improper lists.
int64_t listLength(Value List);

/// Returns a std::string copy of a string or symbol object's bytes.
const char *stringData(Value V, uint32_t &LenOut);

/// Fixnum payload limits (61-bit signed fixnums).
inline constexpr int64_t FixnumMax = (int64_t(1) << 60) - 1;
inline constexpr int64_t FixnumMin = -(int64_t(1) << 60);

inline bool fitsFixnum(int64_t N) { return N >= FixnumMin && N <= FixnumMax; }

} // namespace cmk

#endif // CMARKS_RUNTIME_VALUE_H
