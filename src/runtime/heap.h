//===- runtime/heap.h - Mark-sweep garbage-collected heap -----*- C++ -*-===//
///
/// \file
/// A non-moving mark-sweep collector with block-based bump allocation and
/// size-class free lists. Non-moving matters for fidelity to the paper: the
/// opportunistic one-shot fusion of section 6 depends on whether a captured
/// stack still abuts the current stack, and the collector promotes
/// opportunistic one-shot continuations to full continuations (as the paper
/// describes) during each collection.
///
/// Rooting discipline: every allocXxx function roots its Value parameters
/// across a potential collection, so single allocations initialized from
/// locals are safe. Code holding an otherwise-unreachable value across a
/// separate allocation must wrap it in a GCRoot (or RootedValues).
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_RUNTIME_HEAP_H
#define CMARKS_RUNTIME_HEAP_H

#include "runtime/value.h"
#include "support/limits.h"

#include <cstddef>
#include <string>
#include <vector>

namespace cmk {

class Heap;
struct VMStats;      // support/stats.h
class TraceBuffer;   // support/trace.h
class FaultInjector; // support/faults.h

/// Interface through which the heap discovers roots held by subsystems
/// (the VM registers and stacks, the symbol table, compiler temporaries).
class GCRootSource {
public:
  virtual ~GCRootSource() = default;
  /// Reports every root by calling \p TraceValue. Called during marking.
  virtual void traceRoots(Heap &H) = 0;
};

/// RAII root for a single value held in C++ code across allocations.
class GCRoot {
public:
  GCRoot(Heap &H, Value V);
  ~GCRoot();
  GCRoot(const GCRoot &) = delete;
  GCRoot &operator=(const GCRoot &) = delete;

  Value get() const { return V; }
  void set(Value NewV) { V = NewV; }
  operator Value() const { return V; }

private:
  Heap &H;
  Value V;
};

/// A growable vector of rooted values (used e.g. by the code generator for
/// constant pools under construction).
class RootedValues {
public:
  explicit RootedValues(Heap &H);
  ~RootedValues();
  RootedValues(const RootedValues &) = delete;
  RootedValues &operator=(const RootedValues &) = delete;

  void push(Value V) { Vals.push_back(V); }
  Value operator[](size_t I) const { return Vals[I]; }
  Value &slot(size_t I) { return Vals[I]; }
  size_t size() const { return Vals.size(); }
  const std::vector<Value> &values() const { return Vals; }
  void clear() { Vals.clear(); }

private:
  friend class Heap;
  Heap &H;
  std::vector<Value> Vals;
};

/// Statistics exposed for tests and the benchmark harness.
struct HeapStats {
  uint64_t Collections = 0;
  uint64_t BytesAllocated = 0;
  uint64_t LiveBytesAfterLastGC = 0;
  uint64_t OneShotPromotions = 0; ///< Paper 6: GC promotes one-shots.
};

class Heap {
public:
  Heap();
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  // --- Allocation ----------------------------------------------------------

  Value makePair(Value Car, Value Cdr);
  Value makeString(const char *Data, uint32_t Len);
  Value makeString(const std::string &S) {
    return makeString(S.data(), static_cast<uint32_t>(S.size()));
  }
  Value makeUninitString(uint32_t Len);
  Value makeVector(uint32_t Len, Value Fill);
  Value makeFlonum(double D);
  Value makeBox(Value V);
  Value makeClosure(Value Code, uint32_t NumFree);
  Value makeNative(NativeFn Fn, Value Name, int32_t MinArgs, int32_t MaxArgs);
  Value makeCode(uint32_t NumArgs, uint32_t NumLocals, uint32_t FrameSize,
                 uint32_t Flags, Value Name, const std::vector<Value> &Consts,
                 const std::vector<uint8_t> &Instrs);
  Value makeStackSeg(uint32_t CapacitySlots);
  Value makeCont();
  Value makeHashTable(bool EqualBased);
  Value makeRecord(Value TypeTag, uint32_t NumFields, Value Fill);
  Value makeMarkFrame(uint32_t NumEntries);
  Value makeWinder(Value Before, Value After, Value Marks, Value Next);
  Value makeStdioPort(void *Stream, Value Name);
  Value makeStringPort(Value Name);
  Value makeCompositeCont(uint32_t NumRecords);
  Value makeParameter(Value Key, Value Default, Value Guard, Value Name);
  Value makeFiber(Value Thunk, Value ArgsList, uint64_t Id);

  /// Interns a symbol; symbols are immortal and pointer-comparable.
  Value intern(const char *Name, uint32_t Len);
  Value intern(const std::string &Name) {
    return intern(Name.data(), static_cast<uint32_t>(Name.size()));
  }

  /// Generates a fresh, uninterned symbol (gensym) for private mark keys.
  Value gensym(const char *Prefix);

  // --- Collection ----------------------------------------------------------

  void addRootSource(GCRootSource *Src);
  void removeRootSource(GCRootSource *Src);

  /// Runs a full mark-sweep collection now.
  void collect();

  /// Marks \p V live during the mark phase. Only legal to call from within
  /// a GCRootSource::traceRoots callback.
  void traceValue(Value V);

  const HeapStats &stats() const { return Stats; }

  /// Lets the owning VM route event counters (segment allocations, mark
  /// frame transitions, lookup-cache behaviour) into its VMStats even from
  /// code that only sees the heap. Null when no VM is attached.
  void attachVMStats(VMStats *S) { VmStatsPtr = S; }
  VMStats *vmStats() const { return VmStatsPtr; }

  /// Same routing for the trace buffer: heap- and marks-layer code records
  /// events (segment allocation, mark-frame transitions, cache behaviour)
  /// through this pointer. Null when no VM is attached.
  void attachTraceBuffer(TraceBuffer *T) { TraceBufPtr = T; }
  TraceBuffer *traceBuf() const { return TraceBufPtr; }

  /// Disables automatic collection while constructing multi-object graphs.
  void pauseGC() { ++GCPaused; }
  void resumeGC() { --GCPaused; }

  /// Total bytes allocated since the last collection (test hook).
  uint64_t bytesSinceGC() const { return BytesSinceGC; }

  // --- Segment recycling (paper 5) ------------------------------------------

  /// Enables/disables the size-classed segment pool. Disabling releases any
  /// pooled segments immediately, so `segment-recycles` stays zero and no
  /// pooled memory lingers — the fuzzer's no-recycle leg relies on both.
  void setSegmentRecycling(bool On);
  bool segmentRecycling() const { return RecyclingEnabled; }

  /// Hands a vacated stack segment back to the pool without waiting for a
  /// collection. The caller (the VM's underflow/overflow paths) must have
  /// checked that no underflow record references the segment; this
  /// re-checks the pin/ref state and silently declines when unsure, when
  /// recycling is off, or when the pool is at its byte cap (the segment
  /// then simply dies to the next sweep).
  void recycleStackSeg(Value SegV);

  /// Frees every pooled segment back to the host allocator. Pooled bytes
  /// stay counted in bytesInUse() (the budget governs committed memory,
  /// held-for-reuse included), so the budget path calls this before
  /// resorting to a collection or a headroom grant.
  void releasePooledSegments();

  /// Bytes currently held by the segment pool (test/metrics gauge).
  uint64_t pooledSegmentBytes() const { return PooledSegBytes; }
  uint32_t pooledSegmentCount() const { return PooledSegCount; }

  // --- Resource governance (support/limits.h) ------------------------------

  /// Routes resource budgets into allocation. The pointed-to limits are
  /// read on every allocation, so an embedder can retune them between
  /// runs. Null (or zero fields) disables enforcement.
  void attachLimits(const EngineLimits *L) { LimitsPtr = L; }

  /// Routes fault-injection hooks (support/faults.h) into allocation and
  /// segment paths. Null disables.
  void attachFaults(FaultInjector *F) { FaultsPtr = F; }
  FaultInjector *faults() const { return FaultsPtr; }

  /// Lets a pending trip reach the VM promptly: when a budget grants its
  /// reserve, the heap zeroes *\p Fuel so the dispatch loop reaches its
  /// next safe point immediately instead of allocating through the
  /// headroom for the rest of a full fuel interval.
  void attachFuel(int64_t *Fuel) { FuelPoke = Fuel; }

  /// Bytes currently committed to objects (live + not-yet-swept garbage);
  /// the quantity the heap byte budget governs.
  uint64_t bytesInUse() const { return BytesInUse; }
  /// Live stack segments; the quantity the segment budget governs.
  uint32_t liveStackSegments() const { return LiveSegments; }

  /// Returns and clears the pending budget trip. The VM consumes this at
  /// its next safe point and raises the catchable limit exception.
  TripKind takePendingTrip() {
    TripKind T = PendingTrip;
    PendingTrip = TripKind::None;
    return T;
  }
  bool hasPendingTrip() const { return PendingTrip != TripKind::None; }

  /// Forces a heap-limit trip as if an allocation had exhausted the
  /// budget (the failing fault-injection sites route through this).
  void injectHeapTrip();

  /// Re-arms governance for a fresh run: drops any unconsumed trip and,
  /// when usage is back under budget, retires active headroom/reserve
  /// grants so the next exhaustion trips again.
  void resetGovernance();

  bool heapHeadroomActive() const { return HeadroomActive; }
  bool segmentReserveActive() const { return ReserveActive; }

private:
  friend class GCRoot;
  friend class RootedValues;

  struct Block {
    char *Mem;
    size_t Used;
    size_t Size;
  };

  void *allocRaw(size_t Bytes, ObjKind Kind);
  /// Bump allocation from the nursery for short-lived small objects (pairs
  /// and mark frames). Runs the same governance as allocRaw; falls back to
  /// allocRaw for oversized requests. At each collection an all-dead
  /// nursery block is rewound wholesale; a block with survivors is
  /// promoted into the tenured block set.
  void *allocNursery(size_t Bytes, ObjKind Kind);
  /// The one malloc wrapper (satellite fix for the unchecked calls): on
  /// failure releases the segment pool, collects, and retries, then
  /// reports exhaustion by throwing ResourceExhausted instead of
  /// dereferencing null or aborting.
  void *checkedMalloc(size_t Bytes, const char *What);
  /// Enforces the heap byte budget for an allocation of \p Rounded bytes;
  /// may collect, grant headroom + set a pending trip, or throw.
  void checkHeapBudget(size_t Rounded);
  /// Records a trip for the VM's next safe point (first kind wins) and
  /// zeroes the attached fuel so that safe point arrives immediately.
  void notePendingTrip(TripKind K);
  void maybeCollect();
  void markFromWorklist();
  void traceObject(ObjHeader *O);
  void sweep();
  void sweepNursery(uint64_t &LiveBytes);
  /// Inserts a dead/vacated segment into the pool; false when recycling is
  /// off or the pool byte cap is reached (caller leaves it for the sweep).
  bool pushPooledSeg(StackSegObj *S);
  /// Pops a pooled chunk large enough for \p Rounded bytes, reinitialized
  /// to \p CapacitySlots; null on a pool miss.
  StackSegObj *popPooledSeg(size_t Rounded, uint32_t CapacitySlots);

  std::vector<Block> Blocks;
  std::vector<Block> NurseryBlocks; ///< Bump blocks for allocNursery.
  std::vector<ObjHeader *> LargeObjs;
  static constexpr size_t NumSizeClasses = 64;
  void *FreeLists[NumSizeClasses] = {};

  /// Segment pool: power-of-two size classes indexed by floor(log2
  /// (chunk bytes)); the intrusive next pointer lives in Slots[0]. Pooled
  /// chunks remain in LargeObjs (the sweep skips them) and in BytesInUse.
  static constexpr size_t NumSegClasses = 33;
  void *SegPool[NumSegClasses] = {};
  uint64_t PooledSegBytes = 0;
  uint32_t PooledSegCount = 0;
  bool RecyclingEnabled = true;

  std::vector<ObjHeader *> MarkWorklist;
  std::vector<GCRootSource *> RootSources;
  std::vector<GCRoot *> TempRoots;
  std::vector<RootedValues *> TempVectors;

  // Symbol interning table: name -> symbol value (symbols are immortal).
  struct SymTableEntry {
    uint64_t Hash;
    Value Sym;
  };
  std::vector<std::vector<SymTableEntry>> SymBuckets;
  uint64_t GensymCounter = 0;

  uint64_t BytesSinceGC = 0;
  uint64_t GCThreshold;
  int GCPaused = 0;
  bool InGC = false;
  HeapStats Stats;
  VMStats *VmStatsPtr = nullptr;
  TraceBuffer *TraceBufPtr = nullptr;

  // Resource governance (support/limits.h).
  const EngineLimits *LimitsPtr = nullptr;
  FaultInjector *FaultsPtr = nullptr;
  int64_t *FuelPoke = nullptr; ///< VM fuel, zeroed when a trip is set.
  uint64_t BytesInUse = 0;   ///< Committed object bytes (incl. garbage).
  uint32_t LiveSegments = 0; ///< Live StackSeg objects.
  TripKind PendingTrip = TripKind::None;
  bool HeadroomActive = false; ///< Heap headroom slab granted.
  /// Usage level the active headroom slab was granted at (>= the byte
  /// budget). The slab covers HeadroomBase + HeapHeadroomBytes so it is
  /// real slack even when granted with GC paused and garbage-inflated
  /// usage already far past the budget.
  uint64_t HeadroomBase = 0;
  bool ReserveActive = false;  ///< Segment reserve granted.
};

/// RAII wrapper for Heap::pauseGC/resumeGC.
class GCPauseScope {
public:
  explicit GCPauseScope(Heap &H) : H(H) { H.pauseGC(); }
  ~GCPauseScope() { H.resumeGC(); }

private:
  Heap &H;
};

} // namespace cmk

#endif // CMARKS_RUNTIME_HEAP_H
