//===- runtime/heap.cpp - Mark-sweep collector implementation -*- C++ -*-===//

#include "runtime/heap.h"

#include "support/faults.h"
#include "support/stats.h"
#include "support/trace.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>

// Recycled segments are poisoned while pooled so a use-after-recycle trips
// AddressSanitizer instead of silently reading stale frames.
#if defined(__SANITIZE_ADDRESS__)
#define CMK_HEAP_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CMK_HEAP_ASAN 1
#endif
#endif
#ifndef CMK_HEAP_ASAN
#define CMK_HEAP_ASAN 0
#endif
#if CMK_HEAP_ASAN
#include <sanitizer/asan_interface.h>
#endif

using namespace cmk;

namespace {
/// Internal pseudo-kind marking a swept (free) chunk inside a block.
constexpr uint8_t FreeChunkKind = 0xFF;

constexpr size_t BlockSize = 1u << 20;      // 1 MiB bump blocks.
constexpr size_t MaxSmallBytes = 1024;      // Larger allocations use malloc.
constexpr uint64_t InitialGCThreshold = 16ull << 20;
constexpr size_t NumSymBuckets = 4096;

// Segment pool tuning: the pool holds at most this many bytes (beyond it,
// dead segments fall back to the sweep's free path), and nursery blocks are
// small enough that an all-dead rewind is the common case.
constexpr uint64_t SegPoolByteCap = 16ull << 20;
constexpr size_t NurseryBlockSize = 256u << 10;
constexpr size_t MaxNurseryObjBytes = 512;
constexpr size_t MaxSpareNurseryBlocks = 4;

/// floor(log2(Bytes)); segment-pool class of a chunk's true size.
size_t segClassOf(size_t Bytes) {
  size_t C = 0;
  while (Bytes > 1) {
    Bytes >>= 1;
    ++C;
  }
  return C;
}

/// The byte range of a pooled chunk that is dead while pooled: everything
/// past Slots[0] (which holds the pool's intrusive next pointer).
char *pooledDeadLo(StackSegObj *S) {
  return reinterpret_cast<char *>(&S->Slots[1]);
}
char *pooledDeadHi(StackSegObj *S) {
  return reinterpret_cast<char *>(S) + S->H.SizeBytes;
}

void poisonPooledSeg(StackSegObj *S) {
  char *Lo = pooledDeadLo(S), *Hi = pooledDeadHi(S);
  if (Hi <= Lo)
    return;
#ifndef NDEBUG
  std::memset(Lo, 0xAB, Hi - Lo);
#endif
#if CMK_HEAP_ASAN
  __asan_poison_memory_region(Lo, Hi - Lo);
#endif
}

void unpoisonPooledSeg(StackSegObj *S) {
#if CMK_HEAP_ASAN
  char *Lo = pooledDeadLo(S), *Hi = pooledDeadHi(S);
  if (Hi > Lo)
    __asan_unpoison_memory_region(Lo, Hi - Lo);
#else
  (void)S;
#endif
}

struct FreeChunk {
  ObjHeader H;
  void *Next;
};

uint64_t fnv1a(const char *Data, uint32_t Len) {
  uint64_t Hash = 1469598103934665603ull;
  for (uint32_t I = 0; I < Len; ++I) {
    Hash ^= static_cast<unsigned char>(Data[I]);
    Hash *= 1099511628211ull;
  }
  return Hash;
}

size_t sizeClassOf(size_t RoundedBytes) { return RoundedBytes / 16 - 1; }
} // namespace

GCRoot::GCRoot(Heap &H, Value V) : H(H), V(V) { H.TempRoots.push_back(this); }

GCRoot::~GCRoot() {
  assert(!H.TempRoots.empty() && H.TempRoots.back() == this &&
         "GCRoots must nest like a stack");
  H.TempRoots.pop_back();
}

RootedValues::RootedValues(Heap &H) : H(H) { H.TempVectors.push_back(this); }

RootedValues::~RootedValues() {
  assert(!H.TempVectors.empty() && H.TempVectors.back() == this &&
         "RootedValues must nest like a stack");
  H.TempVectors.pop_back();
}

Heap::Heap() : GCThreshold(InitialGCThreshold) {
  SymBuckets.resize(NumSymBuckets);
}

Heap::~Heap() {
  // Run finalizers for string ports, then release all memory.
  auto FinalizeObj = [](ObjHeader *O) {
    if (O->Kind == ObjKind::Port && O->Aux == 1)
      delete static_cast<std::string *>(reinterpret_cast<PortObj *>(O)->Stream);
  };
  for (Block &B : Blocks) {
    char *P = B.Mem;
    while (P < B.Mem + B.Used) {
      ObjHeader *O = reinterpret_cast<ObjHeader *>(P);
      if (static_cast<uint8_t>(O->Kind) != FreeChunkKind)
        FinalizeObj(O);
      P += O->SizeBytes;
    }
    std::free(B.Mem);
  }
  for (Block &B : NurseryBlocks) {
    char *P = B.Mem;
    while (P < B.Mem + B.Used) {
      ObjHeader *O = reinterpret_cast<ObjHeader *>(P);
      if (static_cast<uint8_t>(O->Kind) != FreeChunkKind)
        FinalizeObj(O);
      P += O->SizeBytes;
    }
    std::free(B.Mem);
  }
  for (ObjHeader *O : LargeObjs) {
    if (O->Kind == ObjKind::StackSeg && (O->Flags & objflags::SegPooled))
      unpoisonPooledSeg(reinterpret_cast<StackSegObj *>(O));
    else
      FinalizeObj(O);
    std::free(O);
  }
}

void Heap::addRootSource(GCRootSource *Src) { RootSources.push_back(Src); }

void Heap::removeRootSource(GCRootSource *Src) {
  for (size_t I = 0; I < RootSources.size(); ++I) {
    if (RootSources[I] == Src) {
      RootSources.erase(RootSources.begin() + I);
      return;
    }
  }
}

void *Heap::checkedMalloc(size_t Bytes, const char *What) {
  void *Mem = std::malloc(Bytes);
  if (!Mem) {
    // Real OOM from the host: the segment pool is pure slack, give it back
    // first; a collection may then return free chunks to size-class lists
    // and, more importantly, lets a retry reuse address space the
    // allocator already holds.
    releasePooledSegments();
    if (!GCPaused && !InGC)
      collect();
    Mem = std::malloc(Bytes);
  }
  if (!Mem)
    throw ResourceExhausted{TripKind::HeapLimit, What};
  return Mem;
}

void Heap::checkHeapBudget(size_t Rounded) {
  // Failing fault sites: pretend this allocation exhausted the budget.
  if (CMK_FAULT(FaultsPtr, Oom))
    injectHeapTrip();

  if (!LimitsPtr || LimitsPtr->HeapBytes == 0)
    return;
  uint64_t Budget = LimitsPtr->HeapBytes;
  if (BytesInUse + Rounded <= Budget)
    return;

  // Pooled-but-free segments count against the budget (they are committed
  // memory); before escalating to a collection or a headroom grant, give
  // that slack back so a program cycling segments within its budget never
  // trips just because the pool filled.
  if (PooledSegCount != 0) {
    releasePooledSegments();
    if (BytesInUse + Rounded <= Budget)
      return;
  }

  if (!HeadroomActive) {
    // Over budget for the first time: collecting may shed garbage that
    // BytesInUse still counts.
    if (!GCPaused && !InGC) {
      collect();
      if (BytesInUse + Rounded <= Budget)
        return;
    }
    // Genuinely at the limit. Grant the headroom slab and leave a trip
    // for the VM's next safe point; this allocation (and the error
    // handling it feeds) proceeds out of the headroom. The slab is
    // anchored at the usage observed right now, not at the budget:
    // when the grant happens while GC is paused (reader/compiler), the
    // uncollectable garbage may already put usage far past the budget,
    // and a budget-anchored slab would be spent before the first
    // allocation it was meant to cover.
    HeadroomActive = true;
    HeadroomBase = std::max(Budget, BytesInUse);
    notePendingTrip(TripKind::HeapLimit);
    return;
  }

  if (BytesInUse + Rounded <= HeadroomBase + LimitsPtr->HeapHeadroomBytes)
    return;
  // The headroom itself is nearly gone. One last collection can rescue a
  // program whose handler dropped references without a GC happening yet.
  if (!GCPaused && !InGC) {
    collect();
    if (BytesInUse + Rounded <= Budget ||
        (HeadroomActive &&
         BytesInUse + Rounded <= HeadroomBase + LimitsPtr->HeapHeadroomBytes))
      return;
  }
  throw ResourceExhausted{TripKind::HeapLimit,
                          "heap limit exceeded beyond reserved headroom"};
}

void Heap::injectHeapTrip() {
  HeadroomActive = true;
  HeadroomBase =
      std::max(LimitsPtr ? LimitsPtr->HeapBytes : uint64_t(0), BytesInUse);
  notePendingTrip(TripKind::HeapLimit);
}

void Heap::notePendingTrip(TripKind K) {
  if (PendingTrip == TripKind::None)
    PendingTrip = K;
  if (FuelPoke)
    *FuelPoke = 0;
}

void Heap::resetGovernance() {
  PendingTrip = TripKind::None;
  if (HeadroomActive || ReserveActive) {
    if (!GCPaused && !InGC)
      collect(); // Re-arms the grants below when usage is back under budget.
    // With no limit configured the grant is vestigial; always retire it.
    if (!LimitsPtr || LimitsPtr->HeapBytes == 0)
      HeadroomActive = false;
    if (!LimitsPtr || LimitsPtr->MaxLiveSegments == 0)
      ReserveActive = false;
  }
}

void *Heap::allocRaw(size_t Bytes, ObjKind Kind) {
  size_t Rounded = (Bytes + 15) & ~size_t(15);
  // Semantics-preserving fault site: force a collection at an arbitrary
  // allocation, shaking out missing-root bugs deterministically.
  if (CMK_FAULT(FaultsPtr, Gc) && !GCPaused && !InGC)
    collect();
  maybeCollect();
  // Budget check happens before any memory or accounting changes, so a
  // ResourceExhausted throw leaves the heap exactly as it was.
  checkHeapBudget(Rounded);

  void *Mem = nullptr;
  if (Rounded > MaxSmallBytes) {
    Mem = checkedMalloc(Rounded, "out of memory (large allocation)");
    LargeObjs.push_back(static_cast<ObjHeader *>(Mem));
  } else {
    size_t Class = sizeClassOf(Rounded);
    if (FreeLists[Class]) {
      Mem = FreeLists[Class];
      FreeLists[Class] = static_cast<FreeChunk *>(Mem)->Next;
    } else {
      if (Blocks.empty() || Blocks.back().Used + Rounded > Blocks.back().Size) {
        char *BlockMem = static_cast<char *>(
            checkedMalloc(BlockSize, "out of memory (block allocation)"));
        Blocks.push_back({BlockMem, 0, BlockSize});
      }
      Block &B = Blocks.back();
      Mem = B.Mem + B.Used;
      B.Used += Rounded;
    }
  }

  std::memset(Mem, 0, Rounded);
  ObjHeader *O = static_cast<ObjHeader *>(Mem);
  O->Kind = Kind;
  O->SizeBytes = static_cast<uint32_t>(Rounded);
  BytesSinceGC += Rounded;
  Stats.BytesAllocated += Rounded;
  BytesInUse += Rounded;
  return Mem;
}

void *Heap::allocNursery(size_t Bytes, ObjKind Kind) {
  size_t Rounded = (Bytes + 15) & ~size_t(15);
  if (Rounded > MaxNurseryObjBytes)
    return allocRaw(Bytes, Kind);
  // Identical governance to allocRaw: the nursery changes where young
  // objects land, not what an allocation is allowed to do.
  if (CMK_FAULT(FaultsPtr, Gc) && !GCPaused && !InGC)
    collect();
  maybeCollect();
  checkHeapBudget(Rounded);

  if (NurseryBlocks.empty() ||
      NurseryBlocks.back().Used + Rounded > NurseryBlocks.back().Size) {
    // Prefer a spare rewound block over growing the nursery.
    size_t Empty = SIZE_MAX;
    for (size_t I = 0; I + 1 < NurseryBlocks.size(); ++I)
      if (NurseryBlocks[I].Used == 0) {
        Empty = I;
        break;
      }
    if (Empty != SIZE_MAX) {
      std::swap(NurseryBlocks[Empty], NurseryBlocks.back());
    } else {
      char *Mem = static_cast<char *>(
          checkedMalloc(NurseryBlockSize, "out of memory (nursery block)"));
      NurseryBlocks.push_back({Mem, 0, NurseryBlockSize});
    }
  }
  Block &B = NurseryBlocks.back();
  void *Mem = B.Mem + B.Used;
  B.Used += Rounded;

  std::memset(Mem, 0, Rounded);
  ObjHeader *O = static_cast<ObjHeader *>(Mem);
  O->Kind = Kind;
  O->SizeBytes = static_cast<uint32_t>(Rounded);
  BytesSinceGC += Rounded;
  Stats.BytesAllocated += Rounded;
  BytesInUse += Rounded;
  CMK_STAT_DETAIL(VmStatsPtr, NurseryAllocs);
  return Mem;
}

void Heap::maybeCollect() {
  if (BytesSinceGC >= GCThreshold && !GCPaused && !InGC)
    collect();
}

void Heap::traceValue(Value V) {
  if (!V.isObj())
    return;
  ObjHeader *O = V.obj();
  if (O->Flags & objflags::GCMark)
    return;
  O->Flags |= objflags::GCMark;
  MarkWorklist.push_back(O);
}

void Heap::traceObject(ObjHeader *O) {
  switch (O->Kind) {
  case ObjKind::Pair: {
    auto *P = reinterpret_cast<Pair *>(O);
    traceValue(P->Car);
    traceValue(P->Cdr);
    break;
  }
  case ObjKind::String:
  case ObjKind::Symbol:
  case ObjKind::Flonum:
    break;
  case ObjKind::Vector: {
    auto *V = reinterpret_cast<VectorObj *>(O);
    for (uint32_t I = 0; I < V->Len; ++I)
      traceValue(V->Elems[I]);
    break;
  }
  case ObjKind::Closure: {
    auto *C = reinterpret_cast<ClosureObj *>(O);
    traceValue(C->Code);
    for (uint32_t I = 0; I < C->NumFree; ++I)
      traceValue(C->Free[I]);
    break;
  }
  case ObjKind::Native:
    traceValue(reinterpret_cast<NativeObj *>(O)->Name);
    break;
  case ObjKind::Code: {
    auto *C = reinterpret_cast<CodeObj *>(O);
    traceValue(C->Name);
    Value *Consts = C->consts();
    for (uint32_t I = 0; I < C->NumConsts; ++I)
      traceValue(Consts[I]);
    break;
  }
  case ObjKind::StackSeg: {
    // All slots are zero-initialized at allocation, so slots above the live
    // area hold valid (possibly stale) values; tracing them conservatively
    // retains at most one dead frame's worth of garbage per segment.
    auto *S = reinterpret_cast<StackSegObj *>(O);
    // A pooled segment's slots are dead (poisoned in sanitized builds);
    // it can only be reached through a stale reference, never traced into.
    if (S->H.Flags & objflags::SegPooled)
      break;
    for (uint32_t I = 0; I < S->Capacity; ++I)
      traceValue(S->Slots[I]);
    break;
  }
  case ObjKind::Cont: {
    auto *K = reinterpret_cast<ContObj *>(O);
    // Paper section 6: the collector promotes opportunistic one-shot
    // continuations to full continuations, so the underflow handler will
    // not attempt to fuse stacks afterwards.
    if (K->shot() == ContShot::Opportunistic) {
      K->setShot(ContShot::Full);
      ++Stats.OneShotPromotions;
    }
    // A full record restores by copying from its segment at an arbitrary
    // later time, so the segment must never be recycled out from under it:
    // pin it (sticky; sweep still reclaims it once unreachable).
    if (K->Seg.isKind(ObjKind::StackSeg))
      K->Seg.obj()->Flags |= objflags::SegPinned;
    traceValue(K->Seg);
    traceValue(K->RetCode);
    traceValue(K->Marks);
    traceValue(K->Winders);
    traceValue(K->Next);
    traceValue(K->PromptTag);
    traceValue(K->MarkStackCopy);
    break;
  }
  case ObjKind::Box:
    traceValue(reinterpret_cast<BoxObj *>(O)->Val);
    break;
  case ObjKind::HashTable: {
    auto *T = reinterpret_cast<HashTableObj *>(O);
    traceValue(T->Keys);
    traceValue(T->Vals);
    break;
  }
  case ObjKind::Record: {
    auto *R = reinterpret_cast<RecordObj *>(O);
    traceValue(R->TypeTag);
    for (uint32_t I = 0; I < R->NumFields; ++I)
      traceValue(R->Fields[I]);
    break;
  }
  case ObjKind::MarkFrame: {
    auto *M = reinterpret_cast<MarkFrameObj *>(O);
    traceValue(M->CacheKey);
    traceValue(M->CacheVal);
    traceValue(M->CacheTail);
    for (uint32_t I = 0; I < 2 * M->NumEntries; ++I)
      traceValue(M->Entries[I]);
    break;
  }
  case ObjKind::Winder: {
    auto *W = reinterpret_cast<WinderObj *>(O);
    traceValue(W->Before);
    traceValue(W->After);
    traceValue(W->Marks);
    traceValue(W->Next);
    break;
  }
  case ObjKind::Port:
    traceValue(reinterpret_cast<PortObj *>(O)->Name);
    break;
  case ObjKind::CompositeCont: {
    auto *C = reinterpret_cast<CompositeContObj *>(O);
    traceValue(C->BoundaryMarks);
    traceValue(C->Winders);
    traceValue(C->BoundaryWinders);
    for (uint32_t I = 0; I < C->NumRecords; ++I)
      traceValue(C->Records[I]);
    break;
  }
  case ObjKind::Parameter: {
    auto *P = reinterpret_cast<ParameterObj *>(O);
    traceValue(P->Key);
    traceValue(P->Default);
    traceValue(P->Guard);
    traceValue(P->Name);
    break;
  }
  case ObjKind::Fiber: {
    auto *F = reinterpret_cast<FiberObj *>(O);
    traceValue(F->Thunk);
    traceValue(F->ArgsList);
    traceValue(F->Cont);
    traceValue(F->ResumeVal);
    traceValue(F->Result);
    traceValue(F->ErrKindSym);
    traceValue(F->Joiners);
    break;
  }
  }
}

void Heap::markFromWorklist() {
  while (!MarkWorklist.empty()) {
    ObjHeader *O = MarkWorklist.back();
    MarkWorklist.pop_back();
    traceObject(O);
  }
}

void Heap::sweep() {
  uint64_t LiveBytes = 0;
  for (size_t I = 0; I < NumSizeClasses; ++I)
    FreeLists[I] = nullptr;

  for (Block &B : Blocks) {
    char *P = B.Mem;
    while (P < B.Mem + B.Used) {
      ObjHeader *O = reinterpret_cast<ObjHeader *>(P);
      uint32_t Size = O->SizeBytes;
      if (static_cast<uint8_t>(O->Kind) == FreeChunkKind) {
        auto *F = reinterpret_cast<FreeChunk *>(O);
        F->Next = FreeLists[sizeClassOf(Size)];
        FreeLists[sizeClassOf(Size)] = F;
      } else if ((O->Flags & objflags::GCMark) ||
                 (O->Flags & objflags::Immortal)) {
        O->Flags &= ~objflags::GCMark;
        LiveBytes += Size;
      } else {
        if (O->Kind == ObjKind::Port && O->Aux == 1)
          delete static_cast<std::string *>(
              reinterpret_cast<PortObj *>(O)->Stream);
        if (O->Kind == ObjKind::StackSeg && LiveSegments > 0)
          --LiveSegments;
        BytesInUse -= Size;
        O->Kind = static_cast<ObjKind>(FreeChunkKind);
        auto *F = reinterpret_cast<FreeChunk *>(O);
        F->Next = FreeLists[sizeClassOf(Size)];
        FreeLists[sizeClassOf(Size)] = F;
      }
      P += Size;
    }
  }

  sweepNursery(LiveBytes);

  std::vector<ObjHeader *> SurvivingLarge;
  SurvivingLarge.reserve(LargeObjs.size());
  for (ObjHeader *O : LargeObjs) {
    // Pooled segments first: a stale reference (e.g. a consumed record
    // still reachable from a captured chain) may have marked one, but it
    // is free memory, not a live object — keep it pooled either way.
    if (O->Kind == ObjKind::StackSeg && (O->Flags & objflags::SegPooled)) {
      O->Flags &= ~objflags::GCMark;
      SurvivingLarge.push_back(O);
      continue;
    }
    if ((O->Flags & objflags::GCMark) || (O->Flags & objflags::Immortal)) {
      O->Flags &= ~objflags::GCMark;
      LiveBytes += O->SizeBytes;
      SurvivingLarge.push_back(O);
    } else if (O->Kind == ObjKind::StackSeg &&
               pushPooledSeg(reinterpret_cast<StackSegObj *>(O))) {
      // Dead segment routed into the recycling pool: it stays in LargeObjs
      // and in BytesInUse, but is no longer a live segment.
      if (LiveSegments > 0)
        --LiveSegments;
      SurvivingLarge.push_back(O);
    } else {
      if (O->Kind == ObjKind::Port && O->Aux == 1)
        delete static_cast<std::string *>(
            reinterpret_cast<PortObj *>(O)->Stream);
      if (O->Kind == ObjKind::StackSeg && LiveSegments > 0)
        --LiveSegments;
      BytesInUse -= O->SizeBytes;
      std::free(O);
    }
  }
  LargeObjs.swap(SurvivingLarge);
  Stats.LiveBytesAfterLastGC = LiveBytes;
}

void Heap::sweepNursery(uint64_t &LiveBytes) {
  std::vector<Block> Kept;
  size_t EmptyKept = 0;
  for (Block &B : NurseryBlocks) {
    bool AnyLive = false;
    for (char *P = B.Mem; P < B.Mem + B.Used;) {
      ObjHeader *O = reinterpret_cast<ObjHeader *>(P);
      if (static_cast<uint8_t>(O->Kind) != FreeChunkKind &&
          (O->Flags & (objflags::GCMark | objflags::Immortal))) {
        AnyLive = true;
        break;
      }
      P += O->SizeBytes;
    }
    if (!AnyLive) {
      // Everything in the block died young: rewind it wholesale. Keep a
      // few empty blocks hot for the next mutator burst, free the rest.
      BytesInUse -= B.Used;
      if (B.Used != 0 && VmStatsPtr)
        ++VmStatsPtr->NurseryResets;
      B.Used = 0;
      if (EmptyKept < MaxSpareNurseryBlocks) {
        Kept.push_back(B);
        ++EmptyKept;
      } else {
        std::free(B.Mem);
      }
      continue;
    }
    // Survivors: tenure the whole block into the mark-sweep block set,
    // threading its dead objects onto the size-class free lists exactly as
    // the tenured sweep would.
    for (char *P = B.Mem; P < B.Mem + B.Used;) {
      ObjHeader *O = reinterpret_cast<ObjHeader *>(P);
      uint32_t Size = O->SizeBytes;
      if (static_cast<uint8_t>(O->Kind) != FreeChunkKind &&
          (O->Flags & (objflags::GCMark | objflags::Immortal))) {
        O->Flags &= ~objflags::GCMark;
        LiveBytes += Size;
      } else if (static_cast<uint8_t>(O->Kind) != FreeChunkKind) {
        if (O->Kind == ObjKind::Port && O->Aux == 1)
          delete static_cast<std::string *>(
              reinterpret_cast<PortObj *>(O)->Stream);
        BytesInUse -= Size;
        O->Kind = static_cast<ObjKind>(FreeChunkKind);
        auto *F = reinterpret_cast<FreeChunk *>(O);
        F->Next = FreeLists[sizeClassOf(Size)];
        FreeLists[sizeClassOf(Size)] = F;
      }
      P += Size;
    }
    Blocks.push_back(B);
    if (VmStatsPtr)
      ++VmStatsPtr->NurseryPromotions;
  }
  NurseryBlocks.swap(Kept);
}

void Heap::collect() {
  InGC = true;
  ++Stats.Collections;

  for (GCRootSource *Src : RootSources)
    Src->traceRoots(*this);
  for (GCRoot *R : TempRoots)
    traceValue(R->get());
  for (RootedValues *RV : TempVectors)
    for (Value V : RV->Vals)
      traceValue(V);
  // Symbols are immortal, but trace the table so bucket entries stay valid
  // even if immortality rules change.
  markFromWorklist();
  sweep();

  BytesSinceGC = 0;
  GCThreshold = std::max<uint64_t>(InitialGCThreshold,
                                   Stats.LiveBytesAfterLastGC * 2);
  // Re-arm governance: once a collection brings usage back under budget,
  // retire the emergency grants so the next exhaustion trips again.
  if (HeadroomActive && (!LimitsPtr || LimitsPtr->HeapBytes == 0 ||
                         BytesInUse <= LimitsPtr->HeapBytes))
    HeadroomActive = false;
  if (ReserveActive && (!LimitsPtr || LimitsPtr->MaxLiveSegments == 0 ||
                        LiveSegments < LimitsPtr->MaxLiveSegments))
    ReserveActive = false;
  InGC = false;
}

// --- Allocation entry points -------------------------------------------------

// The ParamRoots pattern: each allocator stores its Value arguments into
// GCRoots before allocRaw may collect. A fixed GCRoot per argument is cheap
// (one vector push/pop) and keeps the discipline local and auditable.

Value Heap::makePair(Value Car, Value Cdr) {
  GCRoot R1(*this, Car), R2(*this, Cdr);
  auto *P = static_cast<Pair *>(allocNursery(sizeof(Pair), ObjKind::Pair));
  P->Car = R1.get();
  P->Cdr = R2.get();
  return Value::fromObj(&P->H);
}

Value Heap::makeString(const char *Data, uint32_t Len) {
  auto *S = static_cast<StringObj *>(
      allocRaw(sizeof(StringObj) + Len, ObjKind::String));
  S->Len = Len;
  std::memcpy(S->Data, Data, Len);
  return Value::fromObj(&S->H);
}

Value Heap::makeUninitString(uint32_t Len) {
  auto *S = static_cast<StringObj *>(
      allocRaw(sizeof(StringObj) + Len, ObjKind::String));
  S->Len = Len;
  return Value::fromObj(&S->H);
}

Value Heap::makeVector(uint32_t Len, Value Fill) {
  GCRoot R1(*this, Fill);
  auto *V = static_cast<VectorObj *>(
      allocRaw(sizeof(VectorObj) + sizeof(Value) * Len, ObjKind::Vector));
  V->Len = Len;
  for (uint32_t I = 0; I < Len; ++I)
    V->Elems[I] = R1.get();
  return Value::fromObj(&V->H);
}

Value Heap::makeFlonum(double D) {
  auto *F =
      static_cast<FlonumObj *>(allocRaw(sizeof(FlonumObj), ObjKind::Flonum));
  F->Val = D;
  return Value::fromObj(&F->H);
}

Value Heap::makeBox(Value V) {
  GCRoot R1(*this, V);
  auto *B = static_cast<BoxObj *>(allocRaw(sizeof(BoxObj), ObjKind::Box));
  B->Val = R1.get();
  return Value::fromObj(&B->H);
}

Value Heap::makeClosure(Value Code, uint32_t NumFree) {
  GCRoot R1(*this, Code);
  auto *C = static_cast<ClosureObj *>(allocRaw(
      sizeof(ClosureObj) + sizeof(Value) * NumFree, ObjKind::Closure));
  C->NumFree = NumFree;
  C->Code = R1.get();
  for (uint32_t I = 0; I < NumFree; ++I)
    C->Free[I] = Value::undefined();
  return Value::fromObj(&C->H);
}

Value Heap::makeNative(NativeFn Fn, Value Name, int32_t MinArgs,
                       int32_t MaxArgs) {
  GCRoot R1(*this, Name);
  auto *N =
      static_cast<NativeObj *>(allocRaw(sizeof(NativeObj), ObjKind::Native));
  N->Fn = Fn;
  N->Name = R1.get();
  N->MinArgs = MinArgs;
  N->MaxArgs = MaxArgs;
  return Value::fromObj(&N->H);
}

Value Heap::makeCode(uint32_t NumArgs, uint32_t NumLocals, uint32_t FrameSize,
                     uint32_t Flags, Value Name,
                     const std::vector<Value> &Consts,
                     const std::vector<uint8_t> &Instrs) {
  GCRoot R1(*this, Name);
  RootedValues RootedConsts(*this);
  for (Value V : Consts)
    RootedConsts.push(V);
  size_t Bytes = sizeof(CodeObj) + sizeof(Value) * Consts.size() +
                 Instrs.size();
  auto *C = static_cast<CodeObj *>(allocRaw(Bytes, ObjKind::Code));
  C->NumArgs = NumArgs;
  C->NumLocals = NumLocals;
  C->FrameSize = FrameSize;
  C->NumConsts = static_cast<uint32_t>(Consts.size());
  C->NumInstrs = static_cast<uint32_t>(Instrs.size());
  C->Flags = Flags;
  C->Name = R1.get();
  for (size_t I = 0; I < Consts.size(); ++I)
    C->consts()[I] = RootedConsts[I];
  std::memcpy(C->instrs(), Instrs.data(), Instrs.size());
  return Value::fromObj(&C->H);
}

Value Heap::makeStackSeg(uint32_t CapacitySlots) {
  // Segment budget = the continuation-depth limit: deep recursion keeps
  // every overflowed segment live through the underflow-record chain, so
  // counting live segments bounds stack growth without caring how the
  // depth was reached (plain recursion, captured continuations, ...).
  if (LimitsPtr && LimitsPtr->MaxLiveSegments != 0 &&
      LiveSegments >= LimitsPtr->MaxLiveSegments) {
    if (!ReserveActive) {
      // Dead segments may still be counted; collect before tripping.
      if (!GCPaused && !InGC)
        collect();
      if (LiveSegments >= LimitsPtr->MaxLiveSegments) {
        // At the limit: grant the reserve so the overflow in progress
        // completes and the limit exception has stack to run on.
        ReserveActive = true;
        notePendingTrip(TripKind::StackLimit);
      }
    } else if (LiveSegments >=
               LimitsPtr->MaxLiveSegments + LimitsPtr->ReserveSegments) {
      throw ResourceExhausted{TripKind::StackLimit,
                              "stack segment limit exceeded beyond reserve"};
    }
  }
  size_t Bytes = sizeof(StackSegObj) + sizeof(Value) * CapacitySlots;
  size_t Rounded = (Bytes + 15) & ~size_t(15);

  // Pool first: a recycled chunk reuses memory that is already committed
  // and counted, so it bypasses the allocation governance entirely.
  if (StackSegObj *S = popPooledSeg(Rounded, CapacitySlots)) {
    ++LiveSegments;
    if (VmStatsPtr)
      ++VmStatsPtr->SegmentRecycles;
    CMK_TRACE_EV_P(TraceBufPtr, SegmentRecycle, CapacitySlots);
    return Value::fromObj(&S->H);
  }

  // Fresh allocation. Segments always take the individually-malloc'd
  // LargeObjs path (never the small bump blocks) so every chunk can later
  // be pooled and handed back independently of its neighbours. Same
  // governance order as allocRaw: fault site, collection, budget — all
  // before any memory or accounting changes.
  if (CMK_FAULT(FaultsPtr, Gc) && !GCPaused && !InGC)
    collect();
  maybeCollect();
  checkHeapBudget(Rounded);
  void *Mem = checkedMalloc(Rounded, "out of memory (stack segment)");
  LargeObjs.push_back(static_cast<ObjHeader *>(Mem));
  std::memset(Mem, 0, Rounded);
  auto *S = static_cast<StackSegObj *>(Mem);
  S->H.Kind = ObjKind::StackSeg;
  S->H.SizeBytes = static_cast<uint32_t>(Rounded);
  BytesSinceGC += Rounded;
  Stats.BytesAllocated += Rounded;
  BytesInUse += Rounded;
  S->Capacity = CapacitySlots;
  ++LiveSegments;
  if (VmStatsPtr) {
    ++VmStatsPtr->SegmentAllocs;
    VmStatsPtr->SegmentSlotsAllocated += CapacitySlots;
  }
  CMK_TRACE_EV_P(TraceBufPtr, SegmentAlloc, CapacitySlots);
  return Value::fromObj(&S->H);
}

bool Heap::pushPooledSeg(StackSegObj *S) {
  if (!RecyclingEnabled)
    return false;
  if (PooledSegBytes + S->H.SizeBytes > SegPoolByteCap)
    return false;
  size_t Class = segClassOf(S->H.SizeBytes);
  if (Class >= NumSegClasses)
    return false;
  S->H.Flags = objflags::SegPooled; // Clears mark/pin too.
  S->RecordRefs = 0;
  S->Slots[0] = Value::fromRaw(reinterpret_cast<uint64_t>(SegPool[Class]));
  SegPool[Class] = S;
  PooledSegBytes += S->H.SizeBytes;
  ++PooledSegCount;
  poisonPooledSeg(S);
  return true;
}

StackSegObj *Heap::popPooledSeg(size_t Rounded, uint32_t CapacitySlots) {
  if (PooledSegCount == 0)
    return nullptr;
  // Chunks in class K have true size in [2^K, 2^(K+1)), so the request's
  // own floor class holds both fitting and too-small chunks: a short
  // first-fit scan catches the steady-state case where the segment vacated
  // a moment ago is re-requested at the same (non-power-of-two) size.
  // Every chunk in the classes above fits; the class cap bounds internal
  // waste at ~16x. The header, Capacity/RecordRefs, and the intrusive
  // next pointer in Slots[0] stay unpoisoned while pooled, so the scan
  // never reads poisoned memory.
  size_t First = segClassOf(Rounded);
  size_t Last = std::min(First + 3, NumSegClasses - 1);
  for (size_t Class = First; Class <= Last; ++Class) {
    StackSegObj *Prev = nullptr;
    auto *S = static_cast<StackSegObj *>(SegPool[Class]);
    for (int Scan = 0; S && Scan < 8; ++Scan) {
      auto *Next = reinterpret_cast<StackSegObj *>(S->Slots[0].raw());
      if (S->H.SizeBytes >= Rounded) {
        if (Prev)
          Prev->Slots[0] = Value::fromRaw(reinterpret_cast<uint64_t>(Next));
        else
          SegPool[Class] = Next;
        PooledSegBytes -= S->H.SizeBytes;
        --PooledSegCount;
        unpoisonPooledSeg(S);
        // SizeBytes keeps the chunk's true size (sweep accounting and the
        // pool classes depend on it); Capacity shrinks to the request.
        S->H.Flags = 0;
        S->RecordRefs = 0;
        S->Capacity = CapacitySlots;
        std::memset(S->Slots, 0, sizeof(Value) * CapacitySlots);
        return S;
      }
      Prev = S;
      S = Next;
    }
  }
  return nullptr;
}

void Heap::recycleStackSeg(Value SegV) {
  if (!RecyclingEnabled || InGC)
    return;
  StackSegObj *S = asStackSeg(SegV);
  if (S->H.Flags & (objflags::SegPinned | objflags::SegPooled))
    return;
  if (S->RecordRefs != 0)
    return;
  if (pushPooledSeg(S) && LiveSegments > 0)
    --LiveSegments;
}

void Heap::releasePooledSegments() {
  if (PooledSegCount == 0)
    return;
  for (size_t I = 0; I < NumSegClasses; ++I)
    SegPool[I] = nullptr;
  std::vector<ObjHeader *> Kept;
  Kept.reserve(LargeObjs.size());
  for (ObjHeader *O : LargeObjs) {
    if (O->Kind == ObjKind::StackSeg && (O->Flags & objflags::SegPooled)) {
      unpoisonPooledSeg(reinterpret_cast<StackSegObj *>(O));
      BytesInUse -= O->SizeBytes;
      std::free(O);
    } else {
      Kept.push_back(O);
    }
  }
  LargeObjs.swap(Kept);
  PooledSegBytes = 0;
  PooledSegCount = 0;
}

void Heap::setSegmentRecycling(bool On) {
  if (!On)
    releasePooledSegments();
  RecyclingEnabled = On;
}

Value Heap::makeCont() {
  auto *K = static_cast<ContObj *>(allocRaw(sizeof(ContObj), ObjKind::Cont));
  K->Seg = Value::nil();
  K->RetCode = Value::underflowSentinel();
  K->RetPc = Value::fixnum(0);
  K->Marks = Value::nil();
  K->Winders = Value::nil();
  K->Next = Value::nil();
  K->PromptTag = Value::False();
  K->MarkStackCopy = Value::False();
  return Value::fromObj(&K->H);
}

Value Heap::makeFiber(Value Thunk, Value ArgsList, uint64_t Id) {
  GCRoot R1(*this, Thunk), R2(*this, ArgsList);
  auto *F =
      static_cast<FiberObj *>(allocRaw(sizeof(FiberObj), ObjKind::Fiber));
  F->Id = Id;
  F->DueNs = 0;
  F->RunNs = 0;
  F->BudgetNs = 0;
  F->JobDeadlineNs = 0;
  F->Thunk = R1.get();
  F->ArgsList = R2.get();
  F->Cont = Value::undefined();
  F->ResumeVal = Value::voidValue();
  F->Result = Value::voidValue();
  F->ErrKindSym = Value::False();
  F->Joiners = Value::nil();
  F->setState(FiberState::Fresh);
  return Value::fromObj(&F->H);
}

Value Heap::makeHashTable(bool EqualBased) {
  auto *T = static_cast<HashTableObj *>(
      allocRaw(sizeof(HashTableObj), ObjKind::HashTable));
  T->H.Aux = EqualBased ? 1 : 0;
  T->Count = 0;
  T->CapMask = 0;
  T->Keys = Value::nil();
  T->Vals = Value::nil();
  return Value::fromObj(&T->H);
}

Value Heap::makeRecord(Value TypeTag, uint32_t NumFields, Value Fill) {
  GCRoot R1(*this, TypeTag), R2(*this, Fill);
  auto *R = static_cast<RecordObj *>(allocRaw(
      sizeof(RecordObj) + sizeof(Value) * NumFields, ObjKind::Record));
  R->NumFields = NumFields;
  R->TypeTag = R1.get();
  for (uint32_t I = 0; I < NumFields; ++I)
    R->Fields[I] = R2.get();
  return Value::fromObj(&R->H);
}

Value Heap::makeMarkFrame(uint32_t NumEntries) {
  auto *M = static_cast<MarkFrameObj *>(allocNursery(
      sizeof(MarkFrameObj) + sizeof(Value) * 2 * NumEntries,
      ObjKind::MarkFrame));
  M->NumEntries = NumEntries;
  M->CacheKey = Value::undefined();
  M->CacheVal = Value::undefined();
  M->CacheTail = Value::undefined();
  for (uint32_t I = 0; I < 2 * NumEntries; ++I)
    M->Entries[I] = Value::undefined();
  return Value::fromObj(&M->H);
}

Value Heap::makeWinder(Value Before, Value After, Value Marks, Value Next) {
  GCRoot R1(*this, Before), R2(*this, After), R3(*this, Marks),
      R4(*this, Next);
  auto *W =
      static_cast<WinderObj *>(allocRaw(sizeof(WinderObj), ObjKind::Winder));
  W->Before = R1.get();
  W->After = R2.get();
  W->Marks = R3.get();
  W->Next = R4.get();
  return Value::fromObj(&W->H);
}

Value Heap::makeStdioPort(void *Stream, Value Name) {
  GCRoot R1(*this, Name);
  auto *P = static_cast<PortObj *>(allocRaw(sizeof(PortObj), ObjKind::Port));
  P->H.Aux = 0;
  P->Stream = Stream;
  P->Name = R1.get();
  return Value::fromObj(&P->H);
}

Value Heap::makeStringPort(Value Name) {
  GCRoot R1(*this, Name);
  auto *P = static_cast<PortObj *>(allocRaw(sizeof(PortObj), ObjKind::Port));
  P->H.Aux = 1;
  P->Stream = new std::string();
  P->Name = R1.get();
  return Value::fromObj(&P->H);
}

Value Heap::makeCompositeCont(uint32_t NumRecords) {
  auto *C = static_cast<CompositeContObj *>(
      allocRaw(sizeof(CompositeContObj) + sizeof(Value) * NumRecords,
               ObjKind::CompositeCont));
  C->NumRecords = NumRecords;
  C->BoundaryMarks = Value::nil();
  C->Winders = Value::nil();
  C->BoundaryWinders = Value::nil();
  for (uint32_t I = 0; I < NumRecords; ++I)
    C->Records[I] = Value::undefined();
  return Value::fromObj(&C->H);
}

Value Heap::makeParameter(Value Key, Value Default, Value Guard, Value Name) {
  GCRoot R1(*this, Key), R2(*this, Default), R3(*this, Guard), R4(*this, Name);
  auto *P = static_cast<ParameterObj *>(
      allocRaw(sizeof(ParameterObj), ObjKind::Parameter));
  P->Key = R1.get();
  P->Default = R2.get();
  P->Guard = R3.get();
  P->Name = R4.get();
  return Value::fromObj(&P->H);
}

Value Heap::intern(const char *Name, uint32_t Len) {
  uint64_t Hash = fnv1a(Name, Len);
  auto &Bucket = SymBuckets[Hash & (NumSymBuckets - 1)];
  for (const SymTableEntry &E : Bucket) {
    if (E.Hash != Hash)
      continue;
    SymbolObj *S = asSymbol(E.Sym);
    if (S->Len == Len && std::memcmp(S->Data, Name, Len) == 0)
      return E.Sym;
  }
  auto *S = static_cast<SymbolObj *>(
      allocRaw(sizeof(SymbolObj) + Len, ObjKind::Symbol));
  S->H.Flags |= objflags::Immortal;
  S->Hash = Hash;
  S->Len = Len;
  std::memcpy(S->Data, Name, Len);
  Value Sym = Value::fromObj(&S->H);
  Bucket.push_back({Hash, Sym});
  return Sym;
}

Value Heap::gensym(const char *Prefix) {
  char Buf[64];
  int N = std::snprintf(Buf, sizeof(Buf), "%s~%llu", Prefix,
                        static_cast<unsigned long long>(GensymCounter++));
  // Uninterned: allocate a symbol object without a table entry, so it is
  // eq? only to itself.
  auto *S = static_cast<SymbolObj *>(
      allocRaw(sizeof(SymbolObj) + N, ObjKind::Symbol));
  S->H.Flags |= objflags::Immortal;
  S->Hash = fnv1a(Buf, N);
  S->Len = N;
  std::memcpy(S->Data, Buf, N);
  return Value::fromObj(&S->H);
}
