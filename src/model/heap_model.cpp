//===- model/heap_model.cpp - Section 4 reference semantics ----*- C++ -*-===//

#include "model/heap_model.h"

#include "marks/marks.h"
#include "runtime/equal.h"
#include "runtime/heap.h"
#include "runtime/numbers.h"
#include "runtime/printer.h"

#include <unordered_map>

using namespace cmk;

namespace {

// --- Machine structure --------------------------------------------------------

struct ModelEnv {
  ModelEnv *Parent = nullptr;
  std::vector<std::pair<Var *, Value>> Slots;

  Value *lookup(Var *V) {
    for (ModelEnv *E = this; E; E = E->Parent)
      for (auto &S : E->Slots)
        if (S.first == V)
          return &S.second;
    return nullptr;
  }
};

enum class ContKind : uint8_t {
  Halt,
  If,        ///< Waiting for the test value.
  Begin,     ///< Waiting for a non-final body value.
  LetBind,   ///< Waiting for a binding's init value.
  SetLocal,
  SetGlobal,
  CallFn,    ///< Waiting for the callee value.
  CallArg,   ///< Waiting for an argument value.
  AttachVal, ///< Waiting for an attachment op's value/default.
};

/// A heap-allocated continuation frame (paper section 4): every frame
/// pairs the link to the next frame with the marks of the rest of the
/// continuation, so capture/apply never copies and returning through a
/// frame restores its marks.
struct Cont {
  ContKind Kind;
  Cont *Next = nullptr;
  Value Marks = Value::nil(); ///< Marks at frame creation.

  ModelEnv *Env = nullptr;
  Node *ThenNode = nullptr;
  Node *ElseNode = nullptr;
  Var *Binder = nullptr;
  Value GlobalName;
  size_t Index = 0;
  Value Callee;
  std::vector<Value> Args;
  const CallNode *Call = nullptr;
  const LetNode *Let = nullptr;
  const BeginNode *Seq = nullptr;
  const AttachNode *Attach = nullptr;
};

struct ModelClosure {
  const LambdaNode *Fn;
  ModelEnv *Env;
};

struct CapturedK {
  Cont *K;
  Value Marks;
};

enum class Prim : int {
  Add,
  Sub,
  Mul,
  NumEq,
  NumLt,
  Cons,
  Car,
  Cdr,
  SetCar,
  SetCdr,
  NullP,
  PairP,
  EqP,
  Not,
  List,
  ZeroP,
  EvenP,
  Length,
  Reverse,
  MarkFrameUpdate,
  MarkFirst,
  CurrentMarks,
  MarkSetToList,
  CurrentAttachments,
  CallCC,
  CallSetting,
  CallGetting,
  CallConsuming,
};

class HeapModel {
public:
  HeapModel(Heap &H, uint64_t StepLimit) : H(H), StepLimit(StepLimit) {
    installGlobals();
  }

  ModelResult run(LambdaNode *Toplevel);

private:
  ModelEnv *newEnv(ModelEnv *Parent) {
    Envs.push_back(std::make_unique<ModelEnv>());
    Envs.back()->Parent = Parent;
    return Envs.back().get();
  }

  Cont *newCont(ContKind Kind, Cont *Next, Value MarksNow) {
    Conts.push_back(std::make_unique<Cont>());
    Cont *K = Conts.back().get();
    K->Kind = Kind;
    K->Next = Next;
    K->Marks = MarksNow;
    return K;
  }

  Value boxClosure(const LambdaNode *Fn, ModelEnv *Env) {
    Closures.push_back({Fn, Env});
    Value R = H.makeRecord(H.intern("#%model-closure"), 1, Value::nil());
    asRecord(R)->Fields[0] = Value::fixnum(
        static_cast<int64_t>(Closures.size() - 1));
    return R;
  }

  Value boxContinuation(Cont *K, Value MarksAtCapture) {
    Captured.push_back({K, MarksAtCapture});
    Value R = H.makeRecord(H.intern("#%model-k"), 1, Value::nil());
    asRecord(R)->Fields[0] = Value::fixnum(
        static_cast<int64_t>(Captured.size() - 1));
    return R;
  }

  Value primMarker(Prim P) {
    Value R = H.makeRecord(H.intern("#%model-prim"), 1, Value::nil());
    asRecord(R)->Fields[0] = Value::fixnum(static_cast<int64_t>(P));
    return R;
  }

  bool isTagged(Value V, const char *Tag) {
    return V.isRecord() && asRecord(V)->TypeTag == H.intern(Tag);
  }

  void installGlobals();
  ModelResult applyPure(Prim P, const std::vector<Value> &Args, Value Marks);

  static ModelResult failure(const std::string &Msg) {
    return {false, Value::undefined(), Msg};
  }

  Heap &H;
  uint64_t StepLimit;

  std::vector<std::unique_ptr<ModelEnv>> Envs;
  std::vector<std::unique_ptr<Cont>> Conts;
  std::vector<ModelClosure> Closures;
  std::vector<CapturedK> Captured;
  std::unordered_map<uint64_t, Value> Globals;
};

void HeapModel::installGlobals() {
  struct Entry {
    const char *Name;
    Prim P;
  };
  const Entry Entries[] = {
      {"+", Prim::Add},
      {"-", Prim::Sub},
      {"*", Prim::Mul},
      {"=", Prim::NumEq},
      {"<", Prim::NumLt},
      {"cons", Prim::Cons},
      {"car", Prim::Car},
      {"cdr", Prim::Cdr},
      {"set-car!", Prim::SetCar},
      {"set-cdr!", Prim::SetCdr},
      {"null?", Prim::NullP},
      {"pair?", Prim::PairP},
      {"eq?", Prim::EqP},
      {"not", Prim::Not},
      {"list", Prim::List},
      {"zero?", Prim::ZeroP},
      {"even?", Prim::EvenP},
      {"length", Prim::Length},
      {"reverse", Prim::Reverse},
      {"#%mark-frame-update", Prim::MarkFrameUpdate},
      {"continuation-mark-set-first", Prim::MarkFirst},
      {"current-continuation-marks", Prim::CurrentMarks},
      {"continuation-mark-set->list", Prim::MarkSetToList},
      {"current-continuation-attachments", Prim::CurrentAttachments},
      {"#%call/cc", Prim::CallCC},
      {"call-setting-continuation-attachment", Prim::CallSetting},
      {"call-getting-continuation-attachment", Prim::CallGetting},
      {"call-consuming-continuation-attachment", Prim::CallConsuming},
  };
  for (const Entry &E : Entries)
    Globals[H.intern(E.Name).raw()] = primMarker(E.P);
}

ModelResult HeapModel::applyPure(Prim P, const std::vector<Value> &Args,
                                 Value Marks) {
  auto Arity = [&](size_t N) { return Args.size() == N; };
  switch (P) {
  case Prim::Add:
  case Prim::Sub:
  case Prim::Mul: {
    if (Args.empty())
      return {true, Value::fixnum(P == Prim::Mul ? 1 : 0), ""};
    Value Acc = Args[0];
    for (size_t I = 1; I < Args.size(); ++I) {
      NumResult R = P == Prim::Add   ? numAdd(H, Acc, Args[I])
                    : P == Prim::Sub ? numSub(H, Acc, Args[I])
                                     : numMul(H, Acc, Args[I]);
      if (!R.Ok)
        return failure("model: arithmetic type error");
      Acc = R.V;
    }
    if (P == Prim::Sub && Args.size() == 1) {
      NumResult R = numSub(H, Value::fixnum(0), Args[0]);
      if (!R.Ok)
        return failure("model: arithmetic type error");
      Acc = R.V;
    }
    return {true, Acc, ""};
  }
  case Prim::NumEq:
  case Prim::NumLt: {
    if (!Arity(2))
      return failure("model: comparison arity");
    int Cmp;
    if (!numCompare(Args[0], Args[1], Cmp))
      return failure("model: comparison type error");
    return {true,
            Value::boolean(P == Prim::NumEq ? Cmp == 0 : Cmp < 0), ""};
  }
  case Prim::Cons:
    if (!Arity(2))
      return failure("model: cons arity");
    return {true, H.makePair(Args[0], Args[1]), ""};
  case Prim::Car:
    if (!Arity(1) || !Args[0].isPair())
      return failure("model: car type error");
    return {true, car(Args[0]), ""};
  case Prim::Cdr:
    if (!Arity(1) || !Args[0].isPair())
      return failure("model: cdr type error");
    return {true, cdr(Args[0]), ""};
  case Prim::SetCar:
  case Prim::SetCdr:
    if (!Arity(2) || !Args[0].isPair())
      return failure("model: set-car!/set-cdr! type error");
    if (P == Prim::SetCar)
      asPair(Args[0])->Car = Args[1];
    else
      asPair(Args[0])->Cdr = Args[1];
    return {true, Value::voidValue(), ""};
  case Prim::NullP:
    return {true, Value::boolean(Args[0].isNil()), ""};
  case Prim::PairP:
    return {true, Value::boolean(Args[0].isPair()), ""};
  case Prim::EqP:
    if (!Arity(2))
      return failure("model: eq? arity");
    return {true, Value::boolean(Args[0] == Args[1]), ""};
  case Prim::Not:
    return {true, Value::boolean(Args[0].isFalse()), ""};
  case Prim::List: {
    Value Acc = Value::nil();
    for (size_t I = Args.size(); I > 0; --I)
      Acc = H.makePair(Args[I - 1], Acc);
    return {true, Acc, ""};
  }
  case Prim::ZeroP:
    return {true,
            Value::boolean(Args[0].isFixnum() && Args[0].asFixnum() == 0),
            ""};
  case Prim::EvenP:
    if (!Args[0].isFixnum())
      return failure("model: even? type error");
    return {true, Value::boolean(Args[0].asFixnum() % 2 == 0), ""};
  case Prim::Length: {
    int64_t N = listLength(Args[0]);
    if (N < 0)
      return failure("model: length type error");
    return {true, Value::fixnum(N), ""};
  }
  case Prim::Reverse: {
    Value Acc = Value::nil();
    for (Value P2 = Args[0]; P2.isPair(); P2 = cdr(P2))
      Acc = H.makePair(car(P2), Acc);
    return {true, Acc, ""};
  }
  case Prim::MarkFrameUpdate:
    if (!Arity(3))
      return failure("model: mark-frame-update arity");
    return {true, markFrameUpdate(H, Args[0], Args[1], Args[2]), ""};
  case Prim::MarkFirst: {
    // (continuation-mark-set-first #f key [dflt])
    if (Args.size() < 2 || !Args[0].isFalse())
      return failure("model: mark-first supports only the #f shorthand");
    Value Dflt = Args.size() > 2 ? Args[2] : Value::False();
    return {true, markListFirst(H, Marks, Args[1], Dflt), ""};
  }
  case Prim::CurrentMarks: {
    Value R = H.makeRecord(H.intern("#%mark-set"), 2, Value::nil());
    asRecord(R)->Fields[0] = Marks;
    return {true, R, ""};
  }
  case Prim::MarkSetToList: {
    if (!Arity(2) || !isTagged(Args[0], "#%mark-set"))
      return failure("model: mark-set->list type error");
    return {true,
            markListAll(H, asRecord(Args[0])->Fields[0], Args[1],
                        Value::nil()),
            ""};
  }
  default:
    return failure("model: primitive is not pure");
  }
}

ModelResult HeapModel::run(LambdaNode *Toplevel) {
  enum class Mode { Eval, Continue, Apply };

  Node *Expr = Toplevel->Body;
  ModelEnv *Env = newEnv(nullptr);
  Value Marks = Value::nil();
  Cont *K = newCont(ContKind::Halt, nullptr, Marks);
  Mode M = Mode::Eval;
  Value V = Value::voidValue();
  bool RestoreMarksOnContinue = true;
  Value ApplyFn = Value::undefined();
  std::vector<Value> ApplyArgs;

  // The current conceptual frame has an attachment iff the register
  // differs from the continuation's recorded marks (paper sections 3/4).
  auto FrameHasAttachment = [&]() { return Marks != K->Marks; };

  for (uint64_t Steps = 0;; ++Steps) {
    if (Steps > StepLimit)
      return failure("model: step limit exceeded");

    if (M == Mode::Eval) {
      switch (Expr->K) {
      case NodeKind::Const:
        V = static_cast<ConstNode *>(Expr)->V;
        M = Mode::Continue;
        break;
      case NodeKind::LocalRef: {
        Value *Cell = Env->lookup(static_cast<LocalRefNode *>(Expr)->V);
        if (!Cell)
          return failure("model: unbound local");
        V = *Cell;
        M = Mode::Continue;
        break;
      }
      case NodeKind::GlobalRef: {
        auto It =
            Globals.find(static_cast<GlobalRefNode *>(Expr)->Sym.raw());
        if (It == Globals.end() || It->second.isUndefined())
          return failure(
              "model: unbound global " +
              displayToString(static_cast<GlobalRefNode *>(Expr)->Sym));
        V = It->second;
        M = Mode::Continue;
        break;
      }
      case NodeKind::LocalSet: {
        auto *S = static_cast<LocalSetNode *>(Expr);
        Cont *NK = newCont(ContKind::SetLocal, K, Marks);
        NK->Binder = S->V;
        NK->Env = Env;
        K = NK;
        Expr = S->Rhs;
        break;
      }
      case NodeKind::GlobalSet: {
        auto *S = static_cast<GlobalSetNode *>(Expr);
        Cont *NK = newCont(ContKind::SetGlobal, K, Marks);
        NK->GlobalName = S->Sym;
        K = NK;
        Expr = S->Rhs;
        break;
      }
      case NodeKind::If: {
        auto *I = static_cast<IfNode *>(Expr);
        Cont *NK = newCont(ContKind::If, K, Marks);
        NK->ThenNode = I->Then;
        NK->ElseNode = I->Else;
        NK->Env = Env;
        K = NK;
        Expr = I->Test;
        break;
      }
      case NodeKind::Begin: {
        auto *B = static_cast<BeginNode *>(Expr);
        if (B->Body.size() == 1) {
          Expr = B->Body[0];
          break;
        }
        Cont *NK = newCont(ContKind::Begin, K, Marks);
        NK->Seq = B;
        NK->Index = 0;
        NK->Env = Env;
        K = NK;
        Expr = B->Body[0];
        break;
      }
      case NodeKind::Let: {
        auto *L = static_cast<LetNode *>(Expr);
        if (L->Vars.empty()) {
          Expr = L->Body;
          break;
        }
        ModelEnv *Inner = newEnv(Env);
        Cont *NK = newCont(ContKind::LetBind, K, Marks);
        NK->Let = L;
        NK->Index = 0;
        NK->Env = Inner;
        K = NK;
        Expr = L->Inits[0];
        Env = Inner; // Inits never reference the new bindings.
        break;
      }
      case NodeKind::Lambda:
        V = boxClosure(static_cast<LambdaNode *>(Expr), Env);
        M = Mode::Continue;
        break;
      case NodeKind::Call: {
        auto *C = static_cast<CallNode *>(Expr);
        Cont *NK = newCont(ContKind::CallFn, K, Marks);
        NK->Call = C;
        NK->Env = Env;
        K = NK;
        Expr = C->Fn;
        break;
      }
      case NodeKind::Attach: {
        auto *A = static_cast<AttachNode *>(Expr);
        if (A->Op == AttachOp::MStkWcm)
          return failure("model: mark-stack forms are out of scope");
        Cont *NK = newCont(ContKind::AttachVal, K, Marks);
        NK->Attach = A;
        NK->Env = Env;
        K = NK;
        Expr = A->ValOrDflt;
        break;
      }
      }
      continue;
    }

    if (M == Mode::Continue) {
      // Returning through a frame restores its marks (the section 4
      // frame/marks pairing) — except when a captured continuation was
      // applied, which restored the captured marks itself.
      if (RestoreMarksOnContinue)
        Marks = K->Marks;
      RestoreMarksOnContinue = true;

      switch (K->Kind) {
      case ContKind::Halt:
        return {true, V, ""};
      case ContKind::If: {
        Cont *Frame = K;
        K = Frame->Next; // Branches are tail positions of the If.
        Expr = V.isTruthy() ? Frame->ThenNode : Frame->ElseNode;
        Env = Frame->Env;
        M = Mode::Eval;
        break;
      }
      case ContKind::Begin: {
        // Frames are immutable (paper section 4): progressing through the
        // sequence creates a fresh frame so captured continuations can be
        // re-entered safely.
        Cont *Frame = K;
        size_t Next = Frame->Index + 1;
        if (Next + 1 == Frame->Seq->Body.size()) {
          K = Frame->Next; // Final expression: tail position.
        } else {
          Cont *NK = newCont(ContKind::Begin, Frame->Next, Frame->Marks);
          NK->Seq = Frame->Seq;
          NK->Index = Next;
          NK->Env = Frame->Env;
          K = NK;
        }
        Expr = Frame->Seq->Body[Next];
        Env = Frame->Env;
        M = Mode::Eval;
        break;
      }
      case ContKind::LetBind: {
        Cont *Frame = K;
        const LetNode *L = Frame->Let;
        // Overwrite on re-entry (the VM reuses let slots the same way).
        bool Found = false;
        for (auto &S : Frame->Env->Slots)
          if (S.first == L->Vars[Frame->Index]) {
            S.second = V;
            Found = true;
          }
        if (!Found)
          Frame->Env->Slots.push_back({L->Vars[Frame->Index], V});
        size_t Next = Frame->Index + 1;
        if (Next < L->Vars.size()) {
          Cont *NK = newCont(ContKind::LetBind, Frame->Next, Frame->Marks);
          NK->Let = L;
          NK->Index = Next;
          NK->Env = Frame->Env;
          K = NK;
          Expr = L->Inits[Next];
        } else {
          K = Frame->Next; // Body is in tail position.
          Expr = L->Body;
        }
        Env = Frame->Env;
        M = Mode::Eval;
        break;
      }
      case ContKind::SetLocal: {
        Value *Cell = K->Env->lookup(K->Binder);
        if (!Cell)
          return failure("model: set! of unbound local");
        *Cell = V;
        V = Value::voidValue();
        K = K->Next;
        break;
      }
      case ContKind::SetGlobal:
        Globals[K->GlobalName.raw()] = V;
        V = Value::voidValue();
        K = K->Next;
        break;
      case ContKind::CallFn: {
        Cont *Frame = K;
        if (Frame->Call->Args.empty()) {
          ApplyFn = V;
          ApplyArgs.clear();
          K = Frame->Next;
          M = Mode::Apply;
          break;
        }
        Cont *NK = newCont(ContKind::CallArg, Frame->Next, Frame->Marks);
        NK->Call = Frame->Call;
        NK->Env = Frame->Env;
        NK->Callee = V;
        NK->Index = 0;
        K = NK;
        Expr = Frame->Call->Args[0];
        Env = Frame->Env;
        M = Mode::Eval;
        break;
      }
      case ContKind::CallArg: {
        // Immutable progression: each completed argument yields a fresh
        // frame holding one more done-value.
        Cont *Frame = K;
        size_t DoneCount = Frame->Index + 1;
        if (DoneCount < Frame->Call->Args.size()) {
          Cont *NK = newCont(ContKind::CallArg, Frame->Next, Frame->Marks);
          NK->Call = Frame->Call;
          NK->Env = Frame->Env;
          NK->Callee = Frame->Callee;
          NK->Args = Frame->Args;
          NK->Args.push_back(V);
          NK->Index = DoneCount;
          K = NK;
          Expr = Frame->Call->Args[DoneCount];
          Env = Frame->Env;
          M = Mode::Eval;
          break;
        }
        ApplyFn = Frame->Callee;
        ApplyArgs = Frame->Args; // Copy: the frame may be re-entered.
        ApplyArgs.push_back(V);
        K = Frame->Next;
        M = Mode::Apply;
        break;
      }
      case ContKind::AttachVal: {
        Cont *Frame = K;
        const AttachNode *A = Frame->Attach;
        K = Frame->Next;
        Env = Frame->Env;
        switch (A->Op) {
        case AttachOp::Set:
          Marks = FrameHasAttachment() ? H.makePair(V, cdr(Marks))
                                       : H.makePair(V, Marks);
          break;
        case AttachOp::Get:
        case AttachOp::Consume: {
          Value AttVal = FrameHasAttachment() ? car(Marks) : V;
          if (A->Op == AttachOp::Consume && FrameHasAttachment())
            Marks = K->Marks;
          ModelEnv *Inner = newEnv(Frame->Env);
          Inner->Slots.push_back({A->BodyVar, AttVal});
          Env = Inner;
          break;
        }
        case AttachOp::MStkWcm:
          return failure("model: mark-stack forms are out of scope");
        }
        Expr = A->Body; // Tail position of the attach form.
        M = Mode::Eval;
        break;
      }
      }
      continue;
    }

    // Mode::Apply — apply ApplyFn to ApplyArgs with continuation K.
    M = Mode::Continue;
    if (isTagged(ApplyFn, "#%model-closure")) {
      const ModelClosure &C =
          Closures[asRecord(ApplyFn)->Fields[0].asFixnum()];
      const LambdaNode *L = C.Fn;
      size_t Required = L->HasRest ? L->Params.size() - 1 : L->Params.size();
      if (L->HasRest ? ApplyArgs.size() < Required
                     : ApplyArgs.size() != Required)
        return failure("model: arity mismatch");
      ModelEnv *Inner = newEnv(C.Env);
      for (size_t I = 0; I < Required; ++I)
        Inner->Slots.push_back({L->Params[I], ApplyArgs[I]});
      if (L->HasRest) {
        Value Rest = Value::nil();
        for (size_t I = ApplyArgs.size(); I > Required; --I)
          Rest = H.makePair(ApplyArgs[I - 1], Rest);
        Inner->Slots.push_back({L->Params[Required], Rest});
      }
      Expr = L->Body;
      Env = Inner;
      M = Mode::Eval;
      continue;
    }
    if (isTagged(ApplyFn, "#%model-k")) {
      if (ApplyArgs.size() != 1)
        return failure("model: continuation expects 1 argument");
      const CapturedK &CK = Captured[asRecord(ApplyFn)->Fields[0].asFixnum()];
      K = CK.K;
      Marks = CK.Marks; // Section 4: a continuation is a frame paired
                        // with its marks; applying restores both.
      V = ApplyArgs[0];
      RestoreMarksOnContinue = false;
      continue;
    }
    if (!isTagged(ApplyFn, "#%model-prim"))
      return failure("model: application of non-procedure");

    Prim P = static_cast<Prim>(asRecord(ApplyFn)->Fields[0].asFixnum());
    switch (P) {
    case Prim::CallCC: {
      if (ApplyArgs.size() != 1)
        return failure("model: #%call/cc expects 1 argument");
      // The capture pairs the continuation with *its* marks: a frame being
      // exited by a tail call is not part of the captured continuation, so
      // neither is its attachment (paper section 3, last paragraph).
      Value KV = boxContinuation(K, K->Marks);
      ApplyFn = ApplyArgs[0];
      ApplyArgs = {KV};
      M = Mode::Apply; // Tail call: same continuation, same marks.
      break;
    }
    case Prim::CallSetting: {
      if (ApplyArgs.size() != 2)
        return failure("model: call-setting expects 2 arguments");
      Marks = FrameHasAttachment() ? H.makePair(ApplyArgs[0], cdr(Marks))
                                   : H.makePair(ApplyArgs[0], Marks);
      ApplyFn = ApplyArgs[1];
      ApplyArgs = {};
      M = Mode::Apply;
      break;
    }
    case Prim::CallGetting:
    case Prim::CallConsuming: {
      if (ApplyArgs.size() != 2)
        return failure("model: attachment primitive expects 2 arguments");
      Value AttVal = FrameHasAttachment() ? car(Marks) : ApplyArgs[0];
      if (P == Prim::CallConsuming && FrameHasAttachment())
        Marks = K->Marks;
      ApplyFn = ApplyArgs[1];
      ApplyArgs = {AttVal};
      M = Mode::Apply;
      break;
    }
    case Prim::CurrentAttachments:
      V = Marks;
      break;
    default: {
      ModelResult R = applyPure(P, ApplyArgs, Marks);
      if (!R.Ok)
        return R;
      V = R.V;
      break;
    }
    }
  }
}

} // namespace

ModelResult cmk::runHeapModel(Heap &H, LambdaNode *Toplevel,
                              uint64_t StepLimit) {
  GCPauseScope Pause(H); // C++-side machine state is invisible to the GC.
  HeapModel Model(H, StepLimit);
  return Model.run(Toplevel);
}
