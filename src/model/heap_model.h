//===- model/heap_model.h - Section 4 reference semantics ------*- C++ -*-===//
///
/// \file
/// An executable reference model of continuations and marks following
/// paper sections 3 and 4 directly: continuation frames are heap-allocated
/// links (a CEK-style machine), and every reference to a frame is paired
/// with a reference to the frame's marks, so capture and application never
/// copy. Attachment operations follow the definitional semantics:
///
///   - a frame's attachment is present iff the current marks chain differs
///     from the chain recorded in the continuation;
///   - setting in tail position replaces the frame's attachment;
///   - a non-tail body runs in a fresh conceptual frame.
///
/// The model interprets the same core AST the compiler consumes (expander
/// output, no optimization passes) and produces ordinary runtime Values,
/// which makes it a direct differential-testing oracle for the optimized
/// stack-based VM (tests/test_heap_model.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_MODEL_HEAP_MODEL_H
#define CMARKS_MODEL_HEAP_MODEL_H

#include "compiler/ast.h"
#include "runtime/value.h"

#include <memory>
#include <string>
#include <vector>

namespace cmk {

class Heap;

/// Result of a model evaluation.
struct ModelResult {
  bool Ok;
  Value V;            ///< Valid when Ok.
  std::string Error;  ///< Valid when !Ok.
};

/// Interprets \p Toplevel (a zero-argument lambda from the expander) under
/// the section 4 model. Supports the core forms, the four attachment
/// primitives, first-class continuations (capture and reapply), and the
/// basic pure primitives used by the fuzz grammar. The collector is paused
/// for the duration of the run, so programs must be bounded.
ModelResult runHeapModel(Heap &H, LambdaNode *Toplevel, uint64_t StepLimit);

} // namespace cmk

#endif // CMARKS_MODEL_HEAP_MODEL_H
