//===- vm/vm.h - The bytecode VM with stack-based continuations -*- C++ -*-===//
///
/// \file
/// The cmarks virtual machine. Continuations use Chez Scheme's strategy
/// (paper section 5): frames live in heap-allocated stack segments; the
/// first frame of every stack returns to the underflow handler; capturing a
/// continuation splits the stack by installing an underflow record; applying
/// a continuation copies frames back (copy-on-application). Continuation
/// attachments (sections 6/7) add one marks register and a marks field per
/// underflow record; reification-for-marks creates opportunistic one-shot
/// records that the underflow handler can fuse back without copying.
///
/// Frame layout within a segment (indices relative to the frame pointer):
///   fp+0  saved fp (fixnum; dead in the bottom frame of a stack)
///   fp+1  return code (CodeObj value, or the underflow sentinel)
///   fp+2  return pc (fixnum)
///   fp+3  closure being run
///   fp+4+ arguments, then let-bound locals, then expression temporaries
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_VM_VM_H
#define CMARKS_VM_VM_H

#include "compiler/compiler.h"
#include "runtime/heap.h"
#include "runtime/symbols.h"
#include "runtime/value.h"
#include "support/faults.h"
#include "support/limits.h"
#include "support/profiler.h"
#include "support/stats.h"
#include "support/trace.h"
#include "vm/fibers.h"

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

namespace cmk {

class MetricsRegistry;

/// Strategy switches for the benchmark variants (DESIGN.md experiment
/// index). The default configuration is the paper's "builtin" system.
struct VMConfig {
  /// Paper section 6: create opportunistic one-shot records on reification
  /// and fuse on underflow. Off = the "no 1cc" variant of figure 6.
  bool EnableOneShots = true;
  /// Slots per stack segment.
  uint32_t SegmentSlots = 16 * 1024;
  /// Force a fresh segment on every call: emulates heap-allocated frames
  /// (Pycket-like) for the ctak comparison.
  bool HeapFrameMode = false;
  /// call/cc eagerly copies the captured frames (Gambit/CHICKEN-like
  /// copy-on-capture) instead of Chez's copy-on-application.
  bool CopyOnCapture = false;
  /// Old-Racket-style eager mark stack: with-continuation-mark pushes onto
  /// a side stack synchronized with frames; every return pays a check and
  /// continuation capture copies the whole mark stack.
  bool MarkStackMode = false;
  /// Paper section 5: recycle vacated stack segments through the heap's
  /// size-classed pool (and let the sweep route dead segments there)
  /// instead of paying malloc on every overflow/underflow. Off = every
  /// segment comes fresh from the allocator, for differential testing.
  bool EnableSegmentRecycling = true;
  /// Resource budgets (support/limits.h); zero fields disable. Mutable
  /// between runs through VM::config() / SchemeEngine::limits().
  EngineLimits Limits;
};

/// Entry of the old-Racket-style mark stack (MarkStackMode only).
struct MarkStackEntry {
  Value Seg;   ///< Segment identity of the owning frame.
  uint32_t Fp; ///< Frame pointer of the owning frame.
  Value Key;
  Value Val;
};

class VM : public GCRootSource, public GlobalEnv {
public:
  explicit VM(const VMConfig &Cfg = VMConfig());
  ~VM() override;

  Heap &heap() { return H; }
  WellKnown &wellKnown() { return WK; }
  VMConfig &config() { return Cfg; }
  VMStats &stats() { return Stats; }
  const VMStats &stats() const { return Stats; }
  TraceBuffer &trace() { return Trace; }
  const TraceBuffer &trace() const { return Trace; }

  // --- Running code ---------------------------------------------------------

  /// Applies a procedure to arguments on a fresh stack; returns the result.
  /// On a runtime error, *Ok is set to false and errorMessage() explains.
  Value applyProcedure(Value Fn, const Value *Args, uint32_t NArgs, bool &Ok);

  bool failed() const { return Failed; }
  const std::string &errorMessage() const { return ErrMsg; }
  /// Classification of the current error (limit trips vs. plain errors).
  ErrorKind errorKind() const { return ErrKind; }
  /// True when the current error escalated past a reserve (the run ended
  /// with a ResourceExhausted throw instead of a delivered, catchable
  /// trip). Supervisors treat such an engine as wounded: the program
  /// consumed through its own limit-trip handling, so the cheapest safe
  /// recovery is rebuilding the engine (see support/pool.h).
  bool errorFatal() const { return ErrFatal; }
  void clearError() {
    Failed = false;
    ErrMsg.clear();
    ErrKind = ErrorKind::None;
    ErrFatal = false;
  }

  /// Signals a Scheme-level runtime error; unwinds to applyProcedure.
  /// Appends a mark-based stack snapshot (the prelude's trace key) to the
  /// message when one is available.
  Value raiseError(const std::string &Msg);
  /// raiseError with an explicit classification (limit trips).
  Value raiseErrorKind(ErrorKind Kind, const std::string &Msg);

  // --- Resource governance (support/limits.h) --------------------------------

  /// Bits of the asynchronous host->engine signal word. Every safe-point
  /// site loads the word (relaxed) alongside its fuel decrement, so both
  /// signals are delivered at the very next site with zero extra
  /// hot-path cost over the old single interrupt flag.
  static constexpr uint32_t SigInterrupt = 1u << 0;
  static constexpr uint32_t SigSample = 1u << 1;

  /// Thread-safe, async-signal-safe cancellation: the dispatch loop's next
  /// safe point raises a catchable interrupt exception.
  void requestInterrupt() {
    AsyncSignals.fetch_or(SigInterrupt, std::memory_order_relaxed);
  }

  /// Thread-safe sampling poke (support/profiler.h): the next safe point
  /// captures one profile sample. Consuming the bit does NOT poll — fuel,
  /// SafePointPolls, and trip delivery are bit-for-bit unchanged whether
  /// the sampler runs or not.
  void pokeSample() {
    AsyncSignals.fetch_or(SigSample, std::memory_order_relaxed);
  }

  /// The safe-point sampling profiler attached to this engine.
  SamplingProfiler &profiler() { return Prof; }
  const SamplingProfiler &profiler() const { return Prof; }

  /// Pours an engine-level metrics snapshot (event counters, heap gauges,
  /// trace/profile meta-telemetry) into \p R; see support/metrics.h.
  void fillMetrics(MetricsRegistry &R) const;

  /// Per-engine fault injector (support/faults.h). Hooks are compiled in
  /// only under CMARKS_FAULTS, but configuration is always available.
  FaultInjector &faults() { return Faults; }

  /// The prelude registers its snapshot mark key here (via
  /// #%set-snapshot-key!) so raiseError can attach a stack snapshot.
  Value SnapshotKey = Value::undefined();

  // --- Fibers (vm/fibers.h) --------------------------------------------------

  /// Cooperative green threads multiplexed over this VM's continuation
  /// machinery; drives (spawn ...)/(yield) and the pool's fiber mode.
  FiberScheduler Fibers;

  /// Native-side trip delivery for blocking primitives (chunked sleep,
  /// idle waits): when an interrupt, budget trip, or passed deadline is
  /// pending, consumes it and schedules a tail call to the prelude's
  /// #%limit-raise (falling back to raiseErrorKind), exactly as the
  /// dispatch loop's safe point would. Returns true when a trip was
  /// delivered — the native must return immediately without scheduling
  /// anything else. Registers must be synced (native context).
  bool deliverTripFromNative();

  // --- Globals ---------------------------------------------------------------

  Value globalCell(Value Sym) override;
  void setGlobal(const std::string &Name, Value V);
  Value getGlobal(const std::string &Name);
  void defineNative(const std::string &Name, NativeFn Fn, int32_t MinArgs,
                    int32_t MaxArgs);

  // --- Native call-back protocol ---------------------------------------------

  /// Requests that \p Fn be applied, in tail position with respect to the
  /// running native's call, once the native returns. At most one pending
  /// call may be scheduled per native invocation.
  void scheduleTailCall(Value Fn, const Value *Args, uint32_t NArgs);

  // --- Continuation machinery (vm/stacks.cpp, vm/callcc.cpp) -----------------

  /// Reifies the current frame's continuation if needed (paper 7.2: tail
  /// attachment operations). After this, Regs frame returns to the
  /// underflow sentinel and NextK is this frame's record.
  void reifyCurrentFrame();

  /// Reifies at the current sp (call/cc-style split): the current frame and
  /// its temporaries become part of the captured stack. Returns the record.
  Value reifyAtSp(ContShot Shot);

  /// Handles a return through the underflow sentinel; pushes \p Result on
  /// the restored stack. Returns false when the continuation chain is empty
  /// (the run is complete and \p Result is final).
  bool underflow(Value Result);

  /// Applies continuation record \p K to \p Result: replaces the current
  /// stack with the captured one (copying; paper 5).
  void applyContinuation(Value K, Value Result);

  /// Ensures at least \p Needed free slots; may split the stack into a new
  /// segment (overflow reification).
  void ensureStackSpace(uint32_t Needed);

  /// Like applyContinuation but delivers no value: restores the machine to
  /// \p K's resume point. The caller schedules what runs there (used by
  /// prompt aborts to invoke the handler in the prompt's continuation).
  void jumpToContinuation(Value K);

  /// Creates a fresh pass-through underflow record: returning through it
  /// just forwards the value to the next record. Used to attach prompt
  /// metadata to a tail-position continuation without mutating records
  /// that may be shared with captured continuations.
  Value makePassThroughRecord();

  /// Hands a just-vacated segment back to the heap's recycling pool when
  /// it is provably finished with: no underflow record references it
  /// (RecordRefs == 0), it was never referenced by a full record
  /// (SegPinned), and it is not the current segment. Called by the
  /// underflow-copy and overflow-move paths; a no-op when recycling is
  /// disabled or in MarkStackMode (mark-stack entries alias segments).
  void maybeRecycleSegment(Value SegV);

  // --- Registers --------------------------------------------------------------

  /// The machine registers (paper 5/6: stack-base, frame, next-stack, and
  /// the marks register added for attachments).
  struct Registers {
    Value Seg;      ///< Current StackSeg.
    uint32_t Base;  ///< Stack base index within Seg.
    uint32_t Fp;    ///< Current frame pointer (index within Seg).
    uint32_t Sp;    ///< Next free slot (index within Seg).
    Value CurCode;  ///< CodeObj of the running function.
    uint32_t Pc;    ///< Byte offset into CurCode's instructions.
    Value Marks;    ///< Attachment list of the current continuation.
    Value NextK;    ///< Innermost underflow record (or nil).
    Value Winders;  ///< dynamic-wind chain (WinderObj list).
  };
  Registers Regs;

  /// Old-Racket-style mark stack (MarkStackMode).
  std::vector<MarkStackEntry> MarkStack;

  /// When the figure 3 imitation carries the attachments (Imitate engine
  /// variant), this holds the global cell of #%imitate-atts; the marks
  /// layer reads the attachment list from it instead of the register.
  Value ImitationAtts = Value::undefined();

  /// The attachment list the marks layer should read (register or
  /// imitation stack).
  Value currentMarksList() const {
    if (ImitationAtts.isPair())
      return asPair(ImitationAtts)->Car;
    return Regs.Marks;
  }

  // --- GC ---------------------------------------------------------------------

  void traceRoots(Heap &Heap) override;

  /// Protects a value for the lifetime of the VM (e.g. well-known data).
  void addPermanentRoot(Value V) { PermanentRoots.push_back(V); }

  Value slot(uint32_t I) const { return asStackSeg(Regs.Seg)->Slots[I]; }
  void setSlot(uint32_t I, Value V) { asStackSeg(Regs.Seg)->Slots[I] = V; }

  // The interpreter loop lives in vm.cpp.
  Value run();

  // Pending tail-call state (see scheduleTailCall).
  bool PendingCall = false;
  Value PendingFn;
  std::vector<Value> PendingArgs;

  /// True while a native invoked from tail position runs; generic
  /// attachment natives use it to pick the right reification flavour.
  bool NativeTailCall = false;
  /// Set by applyContinuation and the prompt layer when a native replaced
  /// the current continuation (the result is already in place).
  bool NativeJumped = false;

  /// Outcome of the out-of-line call dispatcher.
  enum class Dispatch { Done, Halt };

  /// Dispatches a non-closure (or overflowing) call whose frame starts at
  /// \p Hdr. Registers are authoritative on entry and exit. Returns Halt
  /// when the whole run completed (final value at slot(Regs.Sp - 1)).
  Dispatch dispatchSlowCall(uint32_t Hdr, uint32_t NArgs);

  /// Same for tail calls: callee and args already occupy the current frame.
  Dispatch dispatchSlowTail(uint32_t NArgs);

  /// CallAttach support: reifies at \p Hdr with (rest marks) in the record
  /// (paper 7.2, second category) and marks the pending frame's header.
  void preReifyForAttachCall(uint32_t Hdr);

  /// One-shot "treat the next call as a segment overflow" latch set by the
  /// Overflow fault site and consumed by the slow-call dispatchers.
  bool ForceOverflowOnce = false;

  /// Overflow fault-site hook: when armed and firing, latches
  /// ForceOverflowOnce and diverts the caller off the fast path. Folds to
  /// a constant false when CMARKS_FAULTS is off.
  bool forcedOverflow() {
    if (CMK_FAULT(&Faults, Overflow)) {
      ForceOverflowOnce = true;
      return true;
    }
    return false;
  }

private:
  friend class SchemeEngine;
  friend class FiberScheduler;

  void installBaseFrame(Value Fn, const Value *Args, uint32_t NArgs);

  /// Re-arms fuel, deadline, and pending-trip state for a fresh run.
  void resetGovernance();

  /// True when any EngineLimits field is armed (including a non-default
  /// FuelInterval), i.e. the dispatch loop must actually count fuel. An
  /// ungoverned engine runs with effectively infinite fuel, so it takes
  /// zero safe-point polls; cross-thread interrupts are still delivered
  /// by the per-site InterruptRequested load.
  bool pollingGoverned() const;

  /// The fuel value a refill installs: the configured interval for
  /// governed engines, effectively infinite otherwise.
  int64_t refillFuel() const;

  /// Detaches Regs from a failed run's stack chain so the condemned
  /// segments are collectible immediately.
  void releaseRunState();

  /// Fuel-exhaustion safe point: refills fuel and returns the trip to
  /// deliver (TripKind::None for a plain poll). Registers must be synced.
  TripKind pollSafePoint();

  /// Delivers a limit trip at a safe point by injecting a call to the
  /// prelude's #%limit-raise (which raises a catchable Scheme exception).
  /// Returns false when the prelude hook is unavailable, in which case the
  /// caller reports the trip through raiseErrorKind instead.
  bool injectLimitRaise(TripKind Trip);

  /// Code object containing a single Halt instruction; the bottom of every
  /// run's continuation chain resumes here.
  Value HaltCode;
  /// Code object containing a single Return instruction, used by
  /// pass-through records.
  Value ReturnCode;

  Heap H;
  WellKnown WK;
  VMConfig Cfg;
  VMStats Stats;
  TraceBuffer Trace;

  Value GlobalTable; ///< HashTable symbol -> box.
  std::vector<Value> PermanentRoots;

  bool Failed = false;
  std::string ErrMsg;
  ErrorKind ErrKind = ErrorKind::None;
  bool ErrFatal = false; ///< Current error came from ResourceExhausted.
  bool Running = false;

  // Resource governance state.
  FaultInjector Faults;
  /// Safe-point sites (calls and taken backward branches) until the next
  /// poll. The heap zeroes it through its FuelPoke pointer to force the
  /// next site to poll when a budget trips mid-allocation.
  int64_t FuelLeft = 0;
  std::chrono::steady_clock::time_point Deadline{};
  bool DeadlineArmed = false;
  /// SigInterrupt | SigSample bits, set cross-thread, consumed at safe
  /// points. One word so the hot path pays a single relaxed load.
  std::atomic<uint32_t> AsyncSignals{0};
  /// Sampling profiler (support/profiler.h); its thread only touches
  /// AsyncSignals. Stopped in ~VM before anything else is torn down.
  SamplingProfiler Prof;
};

// --- Native registration (vm/primitives*.cpp, marks/, control/, lib/) --------

/// Installs the base primitive library into \p M.
void installPrimitives(VM &M);
void installListPrimitives(VM &M);
void installStringPrimitives(VM &M);
void installControlPrimitives(VM &M); ///< call/cc, one-shots.
void installWinderPrimitives(VM &M);  ///< dynamic-wind support natives.
void installAttachmentPrimitives(VM &M); ///< Generic 7.1 primitives.
void installPromptPrimitives(VM &M);  ///< control/prompts.cpp.

/// Applies a composable continuation: splices rebased copies of its
/// captured records onto the current continuation (control/prompts.cpp).
void applyCompositeCont(VM &M, Value K, Value Arg, bool TailMode);
void installMarkPrimitives(VM &M);    ///< marks/: mark frames and sets.
void installParameterPrimitives(VM &M);
// installFiberPrimitives lives in vm/fibers.h with the scheduler.

// Helpers shared by native implementations.

/// Reports a type error like "car: expected pair, got 5".
Value typeError(VM &M, const char *Who, const char *Expected, Value Got);

/// Checks the argument count; raises otherwise.
bool checkArity(VM &M, const char *Who, uint32_t NArgs, int32_t Min,
                int32_t Max);

} // namespace cmk

#endif // CMARKS_VM_VM_H
