//===- vm/primitives_list.cpp - List primitives ----------------*- C++ -*-===//

#include "vm/vm.h"

#include "runtime/equal.h"

using namespace cmk;

namespace {

Value nativeCons(VM &M, Value *Args, uint32_t) {
  return M.heap().makePair(Args[0], Args[1]);
}

Value nativeCar(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isPair())
    return typeError(M, "car", "pair", Args[0]);
  return car(Args[0]);
}

Value nativeCdr(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isPair())
    return typeError(M, "cdr", "pair", Args[0]);
  return cdr(Args[0]);
}

Value nativeSetCar(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isPair())
    return typeError(M, "set-car!", "pair", Args[0]);
  asPair(Args[0])->Car = Args[1];
  return Value::voidValue();
}

Value nativeSetCdr(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isPair())
    return typeError(M, "set-cdr!", "pair", Args[0]);
  asPair(Args[0])->Cdr = Args[1];
  return Value::voidValue();
}

/// Composed car/cdr accessor; Path is read right-to-left ("ad" = cadr).
Value access(VM &M, const char *Who, const char *Path, Value V) {
  for (const char *P = Path; *P; ++P) {
    // Apply innermost first: path characters are stored innermost-first.
    if (!V.isPair())
      return typeError(M, Who, "pair", V);
    V = *P == 'a' ? car(V) : cdr(V);
  }
  return V;
}

Value nativeCaar(VM &M, Value *A, uint32_t) { return access(M, "caar", "aa", A[0]); }
Value nativeCadr(VM &M, Value *A, uint32_t) { return access(M, "cadr", "da", A[0]); }
Value nativeCdar(VM &M, Value *A, uint32_t) { return access(M, "cdar", "ad", A[0]); }
Value nativeCddr(VM &M, Value *A, uint32_t) { return access(M, "cddr", "dd", A[0]); }
Value nativeCaddr(VM &M, Value *A, uint32_t) {
  return access(M, "caddr", "dda", A[0]);
}
Value nativeCadddr(VM &M, Value *A, uint32_t) {
  return access(M, "cadddr", "ddda", A[0]);
}
Value nativeCdddr(VM &M, Value *A, uint32_t) {
  return access(M, "cdddr", "ddd", A[0]);
}

Value nativeList(VM &M, Value *Args, uint32_t NArgs) {
  RootedValues Roots(M.heap());
  for (uint32_t I = 0; I < NArgs; ++I)
    Roots.push(Args[I]);
  GCRoot Acc(M.heap(), Value::nil());
  for (uint32_t I = NArgs; I > 0; --I)
    Acc.set(M.heap().makePair(Roots[I - 1], Acc.get()));
  return Acc.get();
}

Value nativeLength(VM &M, Value *Args, uint32_t) {
  int64_t N = listLength(Args[0]);
  if (N < 0)
    return typeError(M, "length", "proper list", Args[0]);
  return Value::fixnum(N);
}

Value nativeListP(VM &, Value *Args, uint32_t) {
  return Value::boolean(listLength(Args[0]) >= 0);
}

Value appendTwo(VM &M, Value A, Value B) {
  if (A.isNil())
    return B;
  GCRoot ARoot(M.heap(), A), BRoot(M.heap(), B);
  // Collect A's elements, then cons onto B back-to-front.
  RootedValues Elems(M.heap());
  for (Value P = ARoot.get(); P.isPair(); P = cdr(P))
    Elems.push(car(P));
  GCRoot Acc(M.heap(), BRoot.get());
  for (size_t I = Elems.size(); I > 0; --I)
    Acc.set(M.heap().makePair(Elems[I - 1], Acc.get()));
  return Acc.get();
}

Value nativeAppend(VM &M, Value *Args, uint32_t NArgs) {
  if (NArgs == 0)
    return Value::nil();
  RootedValues Roots(M.heap());
  for (uint32_t I = 0; I < NArgs; ++I) {
    if (I + 1 < NArgs && listLength(Args[I]) < 0)
      return typeError(M, "append", "proper list", Args[I]);
    Roots.push(Args[I]);
  }
  GCRoot Acc(M.heap(), Roots[NArgs - 1]);
  for (uint32_t I = NArgs - 1; I > 0; --I)
    Acc.set(appendTwo(M, Roots[I - 1], Acc.get()));
  return Acc.get();
}

Value nativeReverse(VM &M, Value *Args, uint32_t) {
  if (listLength(Args[0]) < 0)
    return typeError(M, "reverse", "proper list", Args[0]);
  GCRoot ListRoot(M.heap(), Args[0]);
  GCRoot Acc(M.heap(), Value::nil());
  for (Value P = ListRoot.get(); P.isPair(); P = cdr(P))
    Acc.set(M.heap().makePair(car(P), Acc.get()));
  return Acc.get();
}

Value nativeListTail(VM &M, Value *Args, uint32_t) {
  if (!Args[1].isFixnum())
    return typeError(M, "list-tail", "fixnum", Args[1]);
  Value P = Args[0];
  for (int64_t I = 0; I < Args[1].asFixnum(); ++I) {
    if (!P.isPair())
      return typeError(M, "list-tail", "long enough list", Args[0]);
    P = cdr(P);
  }
  return P;
}

Value nativeListRef(VM &M, Value *Args, uint32_t) {
  if (!Args[1].isFixnum())
    return typeError(M, "list-ref", "fixnum", Args[1]);
  Value P = Args[0];
  for (int64_t I = 0; I < Args[1].asFixnum(); ++I) {
    if (!P.isPair())
      return typeError(M, "list-ref", "long enough list", Args[0]);
    P = cdr(P);
  }
  if (!P.isPair())
    return typeError(M, "list-ref", "long enough list", Args[0]);
  return car(P);
}

template <bool (*Eq)(Value, Value)>
Value memGeneric(VM &M, const char *Who, Value *Args) {
  for (Value P = Args[1]; P.isPair(); P = cdr(P))
    if (Eq(car(P), Args[0]))
      return P;
  return Value::False();
}

bool eqCmp(Value A, Value B) { return A == B; }

Value nativeMemq(VM &M, Value *Args, uint32_t) {
  return memGeneric<eqCmp>(M, "memq", Args);
}
Value nativeMemv(VM &M, Value *Args, uint32_t) {
  return memGeneric<isEqv>(M, "memv", Args);
}
Value nativeMember(VM &M, Value *Args, uint32_t) {
  return memGeneric<isEqual>(M, "member", Args);
}

template <bool (*Eq)(Value, Value)>
Value assGeneric(VM &M, const char *Who, Value *Args) {
  for (Value P = Args[1]; P.isPair(); P = cdr(P))
    if (car(P).isPair() && Eq(car(car(P)), Args[0]))
      return car(P);
  return Value::False();
}

Value nativeAssq(VM &M, Value *Args, uint32_t) {
  return assGeneric<eqCmp>(M, "assq", Args);
}
Value nativeAssv(VM &M, Value *Args, uint32_t) {
  return assGeneric<isEqv>(M, "assv", Args);
}
Value nativeAssoc(VM &M, Value *Args, uint32_t) {
  return assGeneric<isEqual>(M, "assoc", Args);
}

Value nativeLastPair(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isPair())
    return typeError(M, "last-pair", "pair", Args[0]);
  Value P = Args[0];
  while (cdr(P).isPair())
    P = cdr(P);
  return P;
}

Value nativeListCopy(VM &M, Value *Args, uint32_t) {
  return appendTwo(M, Args[0], Value::nil());
}

} // namespace

void cmk::installListPrimitives(VM &M) {
  M.defineNative("cons", nativeCons, 2, 2);
  M.defineNative("car", nativeCar, 1, 1);
  M.defineNative("cdr", nativeCdr, 1, 1);
  M.defineNative("set-car!", nativeSetCar, 2, 2);
  M.defineNative("set-cdr!", nativeSetCdr, 2, 2);
  M.defineNative("caar", nativeCaar, 1, 1);
  M.defineNative("cadr", nativeCadr, 1, 1);
  M.defineNative("cdar", nativeCdar, 1, 1);
  M.defineNative("cddr", nativeCddr, 1, 1);
  M.defineNative("caddr", nativeCaddr, 1, 1);
  M.defineNative("cdddr", nativeCdddr, 1, 1);
  M.defineNative("cadddr", nativeCadddr, 1, 1);
  M.defineNative("list", nativeList, 0, -1);
  M.defineNative("length", nativeLength, 1, 1);
  M.defineNative("list?", nativeListP, 1, 1);
  M.defineNative("append", nativeAppend, 0, -1);
  M.defineNative("reverse", nativeReverse, 1, 1);
  M.defineNative("list-tail", nativeListTail, 2, 2);
  M.defineNative("list-ref", nativeListRef, 2, 2);
  M.defineNative("memq", nativeMemq, 2, 2);
  M.defineNative("memv", nativeMemv, 2, 2);
  M.defineNative("member", nativeMember, 2, 2);
  M.defineNative("assq", nativeAssq, 2, 2);
  M.defineNative("assv", nativeAssv, 2, 2);
  M.defineNative("assoc", nativeAssoc, 2, 2);
  M.defineNative("last-pair", nativeLastPair, 1, 1);
  M.defineNative("list-copy", nativeListCopy, 1, 1);
}
