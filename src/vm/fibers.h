//===- vm/fibers.h - Cooperative fibers over one-shot continuations -*- C++ -*-===//
///
/// \file
/// Green threads ("fibers") built directly on the paper's continuation
/// machinery (DESIGN.md section 16). A fiber is a FiberObj (runtime/value.h)
/// whose suspended form is a captured one-shot continuation: parking a
/// fiber reifies the current continuation exactly the way call/1cc does
/// (vm/callcc.cpp), records it in the fiber, and switches the machine to
/// the next runnable fiber by applying *its* saved capture. Because every
/// suspension point runs through the ordinary reify/apply paths, a fiber's
/// marks, winders, and parameterizations travel with its continuation for
/// free — switching fibers swaps the whole Marks/Winders register state,
/// which is what gives mark isolation between interleaved fibers.
///
/// The scheduler is deliberately single-threaded: one FiberScheduler per
/// VM, driven only from natives running on that VM's thread. Determinism
/// falls out (run queue order is FIFO, timers fire in due order), which is
/// what lets the differential fuzzer include fiber programs.
///
/// Two operating modes share the code:
///
///  - *Standalone* (the default): `(spawn thunk)` inside any eval. When
///    every fiber is blocked the scheduler idle-waits inside the run
///    (chunked, interruptible sleeps) until the earliest timer fires.
///  - *Cooperative pool* (`CoopPool`): the engine belongs to a pool worker
///    multiplexing many jobs. When nothing is runnable the scheduler ends
///    the current *slice* — it jumps to a fresh halt continuation so
///    VM::run() returns and the host worker regains control to admit new
///    jobs or sleep on its queue. Parked jobs hold no worker thread.
///
/// Run-time accounting: RunNs accumulates only while a fiber is switched
/// in, so parked time never counts against a pool job's run-time budget
/// (per-fiber BudgetNs) — only the wall-clock job deadline (JobDeadlineNs)
/// keeps ticking while parked, which is exactly the deadline/timeout split
/// the pool's telemetry reports.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_VM_FIBERS_H
#define CMARKS_VM_FIBERS_H

#include "runtime/value.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace cmk {

class Heap;
class VM;

class FiberScheduler {
public:
  /// Cooperative-pool mode: an idle scheduler ends the slice (VM::run()
  /// returns a status symbol) instead of blocking in-run. Set by
  /// SchemeEngine::enableFiberPool() before any fiber exists.
  bool CoopPool = false;

  /// Pluggable wait hook (future I/O integration): when set, standalone
  /// idle waits call this instead of sleeping. The hook may return early;
  /// the scheduler re-checks timers and signals after every call.
  std::function<void(uint64_t MaxWaitNs)> WaitHook;

  // --- Queries (host/pool side; same thread as the VM) ----------------------

  /// True when fiber scheduling should govern blocking primitives: either
  /// pool mode, or live spawned fibers exist (standalone (spawn ...)).
  bool schedulingActive() const {
    return CoopPool || Live > 0 || !RunQueue.empty() || !Timers.empty();
  }
  bool hasRunnable() const { return !RunQueue.empty(); }
  /// Pool-mode safe-point gate: an interrupt may only be consumed while a
  /// fiber is switched in. Between slices the engine runs scheduler glue
  /// (the slice closure, dispatch natives) with no current fiber — a trip
  /// delivered there has no job to attribute to and would be silently
  /// swallowed, so pollSafePoint leaves the bit armed until the next
  /// fiber resumes and owns the trip.
  bool interruptDeliverable() const { return Current.isFiber(); }
  /// Live spawned fibers (jobs and user fibers; excludes adopted roots).
  uint64_t liveFibers() const { return Live; }
  /// Ns until the earliest timer is due (0 when none pending); the pool
  /// worker bounds its queue wait by this so sleepers wake on time.
  uint64_t nextTimerDelayNs() const;
  /// Finished job fibers awaiting collection by the pool worker.
  size_t doneJobCount() const { return DoneJobs.size(); }

  // --- Fiber lifecycle (natives and engine glue; VM thread only) ------------

  /// Creates a runnable fiber that will call \p Thunk on \p ArgsList.
  /// Sub-fibers spawned from a pool job inherit the job's wall-clock
  /// deadline and a snapshot of its remaining run-time budget so a
  /// runaway sub-fiber cannot outlive its job's governance.
  Value spawn(VM &M, Value Thunk, Value ArgsList);

  /// Pool entry: like spawn but with explicit governance and the job flag
  /// (finishing retires the slice and queues the fiber in DoneJobs).
  /// \p DelayNs > 0 parks the fresh fiber on a timer first (retry backoff).
  Value spawnJob(VM &M, Value Thunk, Value ArgsList, uint64_t BudgetNs,
                 uint64_t DeadlineNs, uint64_t DelayNs);

  /// (yield): if another fiber is runnable, capture, requeue self, switch.
  /// No-op when alone. Native-context only.
  void yieldCurrent(VM &M);

  /// Parks the current fiber (capturing its continuation one-shot) and
  /// switches away. \p DueNs is an absolute nowNanos() wake time (0 =
  /// untimed; wait for an explicit unpark). The park call's resumption
  /// value is whatever unpark delivers, or the symbol `timeout` when the
  /// timer fired. Native-context only; uses the tail/non-tail capture
  /// split exactly like #%call/1cc.
  void parkCurrent(VM &M, uint64_t DueNs);

  /// Makes a parked fiber runnable with resumption value \p ResumeV.
  /// Returns false (and does nothing) unless the fiber is actually parked,
  /// so stale waitlist entries are harmless.
  bool unpark(VM &M, Value FV, Value ResumeV);

  /// Parks the current fiber on \p Target's join list (forever; woken by
  /// the target finishing). If the target is already done, returns without
  /// parking.
  void joinPark(VM &M, Value Target);

  /// Records the current fiber's outcome (called by the prelude's
  /// #%fiber-boot after its catch-all), wakes joiners, and dispatches the
  /// next fiber (or retires the slice for a pool job).
  void finishCurrent(VM &M, Value FV, bool Ok, Value Result, Value KindSym);

  /// The fiber currently switched in; adopts the root context as a fiber
  /// on first use so toplevel code can park/join like any other fiber.
  Value currentFiber(VM &M);

  /// Body of the #%fiber-schedule! native: pumps timers and switches into
  /// the next runnable fiber; returns the symbol `idle` directly when
  /// nothing is runnable or due (the slice closure just returns it).
  Value enterSlice(VM &M);

  /// Host-side (between runs): the slice died with Current still switched
  /// in (limit trip that escaped the fiber, engine error). Marks the
  /// current fiber done-with-error so its joiners wake and the pool can
  /// retire it. Safe to call when no fiber is current.
  void failCurrent(VM &M, const std::string &Msg, Value KindSym);

  /// Drains the finished-job list (pool worker, between slices).
  std::vector<Value> takeDoneJobs();

  /// Host-side: an interrupt arrived while the worker idled between
  /// slices. Forces the earliest timer due immediately so the next slice
  /// resumes a fiber whose first safe point delivers the trip.
  void kickEarliestTimer();

  /// Called from VM::resetGovernance() at every run boundary: detaches a
  /// stale adopted-root fiber left switched-in by a completed run (its
  /// joiners wake) and restamps the slice clock.
  void noteRunBoundary(VM &M);

  /// Pool-mode interrupts must survive the idle gaps between slices;
  /// resetGovernance keeps the SigInterrupt bit armed when this is true.
  bool preserveInterruptAcrossRuns() const {
    return CoopPool &&
           (Live > 0 || !RunQueue.empty() || !Timers.empty() || !DoneJobs.empty());
  }

  void traceRoots(Heap &H);

private:
  struct TimerEntry {
    uint64_t Due; ///< Absolute nowNanos() deadline.
    Value F;      ///< The fiber; entry is stale unless F->DueNs == Due.
  };

  /// Switches into the next runnable fiber. Returns false only on a
  /// standalone deadlock (nothing runnable, no timers): the caller must
  /// turn that into an error in a consistent context.
  bool dispatchNext(VM &M);
  void switchTo(VM &M, Value FV);
  /// Ends the current slice: jumps to a fresh halt continuation delivering
  /// \p Status, so the enclosing VM::run() returns it to the host.
  void endSlice(VM &M, Value Status);
  /// Moves due timers to the run queue; drops stale entries.
  void pumpTimers(VM &M, uint64_t Now);
  /// Standalone blocking wait for the earliest timer: chunked sleeps that
  /// break early for interrupts/deadlines by forcing the timer due now.
  void idleWait(VM &M);
  /// Arms the VM deadline from the fiber's remaining budget and job
  /// deadline; stamps the slice clock.
  void armBudget(VM &M, FiberObj *F);
  /// Accumulates RunNs and burns BudgetNs for the outgoing fiber.
  void noteSwitchOut(FiberObj *F);
  void wakeJoiners(VM &M, FiberObj *F);
  void addTimer(Value FV, uint64_t Due);
  /// A full continuation record that resumes at the VM's Halt instruction
  /// with empty marks/winders: the boot context of every fresh fiber and
  /// the landing pad of endSlice.
  Value makeHaltCont(VM &M);
  /// call/1cc-style capture of the current continuation, marked explicit
  /// one-shot so a stray double-resume fails with the standard error.
  Value captureHere(VM &M);

  std::deque<Value> RunQueue;     ///< Runnable fibers, FIFO.
  std::vector<TimerEntry> Timers; ///< Min-heap by Due; lazy stale deletion.
  std::vector<Value> DoneJobs;    ///< Finished job fibers, oldest first.
  Value Current = Value::undefined();
  uint64_t NextId = 1;
  uint64_t Live = 0;         ///< Spawned fibers not yet Done.
  uint64_t SliceStartNs = 0; ///< When the current fiber was switched in.
};

/// Registers the fiber natives (vm/fibers.cpp).
void installFiberPrimitives(VM &M);

} // namespace cmk

#endif // CMARKS_VM_FIBERS_H
