//===- vm/primitives.cpp - Core primitive library --------------*- C++ -*-===//
///
/// \file
/// Numbers, predicates, vectors, boxes, hash tables, output, and
/// introspection natives. List and string primitives live in their own
/// files; control/marks primitives live next to their subsystems.
///
//===----------------------------------------------------------------------===//

#include "vm/vm.h"

#include "lib/parameters.h"
#include "runtime/equal.h"
#include "runtime/hashtable.h"
#include "runtime/numbers.h"
#include "runtime/printer.h"
#include "support/metrics.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

using namespace cmk;

namespace {

// --- Numeric primitives ------------------------------------------------------

/// Reports a failed NumResult: the operation's specific complaint when it
/// has one (e.g. "division by zero"), the generic type error otherwise.
Value numError(VM &M, const char *Who, const NumResult &R) {
  return M.raiseError(std::string(Who) + ": " +
                      (R.Err ? R.Err : "expected numbers"));
}

template <NumResult (*Fn)(Heap &, Value, Value)>
Value foldNumeric(VM &M, const char *Who, Value Init, Value *Args,
                  uint32_t NArgs) {
  GCRoot Acc(M.heap(), NArgs ? Args[0] : Init);
  for (uint32_t I = 1; I < NArgs; ++I) {
    NumResult R = Fn(M.heap(), Acc.get(), Args[I]);
    if (!R.Ok)
      return numError(M, Who, R);
    Acc.set(R.V);
  }
  return Acc.get();
}

Value nativeAdd(VM &M, Value *Args, uint32_t NArgs) {
  return foldNumeric<numAdd>(M, "+", Value::fixnum(0), Args, NArgs);
}

Value nativeSub(VM &M, Value *Args, uint32_t NArgs) {
  if (NArgs == 1) {
    NumResult R = numSub(M.heap(), Value::fixnum(0), Args[0]);
    if (!R.Ok)
      return M.raiseError("-: expected number");
    return R.V;
  }
  return foldNumeric<numSub>(M, "-", Value::fixnum(0), Args, NArgs);
}

Value nativeMul(VM &M, Value *Args, uint32_t NArgs) {
  return foldNumeric<numMul>(M, "*", Value::fixnum(1), Args, NArgs);
}

Value nativeDiv(VM &M, Value *Args, uint32_t NArgs) {
  if (NArgs == 1) {
    NumResult R = numDiv(M.heap(), Value::fixnum(1), Args[0]);
    if (!R.Ok)
      return numError(M, "/", R);
    return R.V;
  }
  return foldNumeric<numDiv>(M, "/", Value::fixnum(1), Args, NArgs);
}

template <int Lo, int Hi>
Value compareChain(VM &M, const char *Who, Value *Args, uint32_t NArgs) {
  for (uint32_t I = 0; I + 1 < NArgs; ++I) {
    int Cmp;
    if (!numCompare(Args[I], Args[I + 1], Cmp))
      return M.raiseError(std::string(Who) + ": expected numbers");
    if (Cmp < Lo || Cmp > Hi)
      return Value::False();
  }
  return Value::True();
}

Value nativeLt(VM &M, Value *A, uint32_t N) {
  return compareChain<-1, -1>(M, "<", A, N);
}
Value nativeLe(VM &M, Value *A, uint32_t N) {
  return compareChain<-1, 0>(M, "<=", A, N);
}
Value nativeGt(VM &M, Value *A, uint32_t N) {
  return compareChain<1, 1>(M, ">", A, N);
}
Value nativeGe(VM &M, Value *A, uint32_t N) {
  return compareChain<0, 1>(M, ">=", A, N);
}
Value nativeNumEq(VM &M, Value *A, uint32_t N) {
  return compareChain<0, 0>(M, "=", A, N);
}

Value nativeQuotient(VM &M, Value *Args, uint32_t NArgs) {
  NumResult R = numQuotient(M.heap(), Args[0], Args[1]);
  if (!R.Ok)
    return numError(M, "quotient", R);
  return R.V;
}

Value nativeRemainder(VM &M, Value *Args, uint32_t NArgs) {
  NumResult R = numRemainder(M.heap(), Args[0], Args[1]);
  if (!R.Ok)
    return numError(M, "remainder", R);
  return R.V;
}

Value nativeModulo(VM &M, Value *Args, uint32_t NArgs) {
  NumResult R = numModulo(M.heap(), Args[0], Args[1]);
  if (!R.Ok)
    return numError(M, "modulo", R);
  return R.V;
}

Value nativeMin(VM &M, Value *Args, uint32_t NArgs) {
  Value Best = Args[0];
  for (uint32_t I = 1; I < NArgs; ++I) {
    int Cmp;
    if (!numCompare(Args[I], Best, Cmp))
      return M.raiseError("min: expected numbers");
    if (Cmp < 0)
      Best = Args[I];
  }
  return Best;
}

Value nativeMax(VM &M, Value *Args, uint32_t NArgs) {
  Value Best = Args[0];
  for (uint32_t I = 1; I < NArgs; ++I) {
    int Cmp;
    if (!numCompare(Args[I], Best, Cmp))
      return M.raiseError("max: expected numbers");
    if (Cmp > 0)
      Best = Args[I];
  }
  return Best;
}

Value nativeAbs(VM &M, Value *Args, uint32_t NArgs) {
  Value A = Args[0];
  if (A.isFixnum())
    return Value::fixnum(std::llabs(A.asFixnum()));
  if (A.isFlonum())
    return M.heap().makeFlonum(std::fabs(asFlonum(A)->Val));
  return typeError(M, "abs", "number", A);
}

template <double (*Fn)(double)>
Value floUnary(VM &M, const char *Who, Value *Args) {
  if (!Args[0].isNumber())
    return typeError(M, Who, "number", Args[0]);
  return M.heap().makeFlonum(Fn(toDouble(Args[0])));
}

Value nativeSqrt(VM &M, Value *Args, uint32_t N) {
  if (Args[0].isFixnum() && Args[0].asFixnum() >= 0) {
    int64_t Root = static_cast<int64_t>(std::sqrt(
        static_cast<double>(Args[0].asFixnum())));
    // Prefer exact roots for exact inputs.
    for (int64_t R = std::max<int64_t>(0, Root - 1); R <= Root + 1; ++R)
      if (R * R == Args[0].asFixnum())
        return Value::fixnum(R);
  }
  return floUnary<std::sqrt>(M, "sqrt", Args);
}
Value nativeSin(VM &M, Value *Args, uint32_t N) {
  return floUnary<std::sin>(M, "sin", Args);
}
Value nativeCos(VM &M, Value *Args, uint32_t N) {
  return floUnary<std::cos>(M, "cos", Args);
}
Value nativeExp(VM &M, Value *Args, uint32_t N) {
  return floUnary<std::exp>(M, "exp", Args);
}
Value nativeLog(VM &M, Value *Args, uint32_t N) {
  return floUnary<std::log>(M, "log", Args);
}
Value nativeAtan(VM &M, Value *Args, uint32_t N) {
  if (N == 2) {
    if (!Args[0].isNumber() || !Args[1].isNumber())
      return typeError(M, "atan", "number", Args[0]);
    return M.heap().makeFlonum(std::atan2(toDouble(Args[0]),
                                          toDouble(Args[1])));
  }
  return floUnary<std::atan>(M, "atan", Args);
}

Value nativeExpt(VM &M, Value *Args, uint32_t N) {
  if (Args[0].isFixnum() && Args[1].isFixnum() && Args[1].asFixnum() >= 0) {
    int64_t Base = Args[0].asFixnum(), Exp = Args[1].asFixnum();
    int64_t Acc = 1;
    bool Overflow = false;
    for (int64_t I = 0; I < Exp && !Overflow; ++I)
      Overflow = __builtin_mul_overflow(Acc, Base, &Acc) || !fitsFixnum(Acc);
    if (!Overflow)
      return Value::fixnum(Acc);
  }
  if (!Args[0].isNumber() || !Args[1].isNumber())
    return typeError(M, "expt", "number", Args[0]);
  return M.heap().makeFlonum(std::pow(toDouble(Args[0]), toDouble(Args[1])));
}

Value nativeFloor(VM &M, Value *Args, uint32_t N) {
  if (Args[0].isFixnum())
    return Args[0];
  return floUnary<std::floor>(M, "floor", Args);
}
Value nativeCeiling(VM &M, Value *Args, uint32_t N) {
  if (Args[0].isFixnum())
    return Args[0];
  return floUnary<std::ceil>(M, "ceiling", Args);
}
Value nativeTruncate(VM &M, Value *Args, uint32_t N) {
  if (Args[0].isFixnum())
    return Args[0];
  return floUnary<std::trunc>(M, "truncate", Args);
}
Value nativeRound(VM &M, Value *Args, uint32_t N) {
  if (Args[0].isFixnum())
    return Args[0];
  return floUnary<std::nearbyint>(M, "round", Args);
}

Value nativeExactToInexact(VM &M, Value *Args, uint32_t N) {
  if (!Args[0].isNumber())
    return typeError(M, "exact->inexact", "number", Args[0]);
  return Args[0].isFlonum() ? Args[0] : M.heap().makeFlonum(toDouble(Args[0]));
}

Value nativeInexactToExact(VM &M, Value *Args, uint32_t N) {
  if (Args[0].isFixnum())
    return Args[0];
  if (Args[0].isFlonum()) {
    double D = asFlonum(Args[0])->Val;
    if (D == std::trunc(D) && fitsFixnum(static_cast<int64_t>(D)))
      return Value::fixnum(static_cast<int64_t>(D));
    return M.raiseError("inexact->exact: no exact representation");
  }
  return typeError(M, "inexact->exact", "number", Args[0]);
}

// --- Predicates --------------------------------------------------------------

Value nativeNumberP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isNumber());
}
Value nativeIntegerP(VM &, Value *Args, uint32_t) {
  if (Args[0].isFixnum())
    return Value::True();
  if (Args[0].isFlonum())
    return Value::boolean(asFlonum(Args[0])->Val ==
                          std::trunc(asFlonum(Args[0])->Val));
  return Value::False();
}
Value nativeFixnumP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isFixnum());
}
Value nativeFlonumP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isFlonum());
}
Value nativeEvenP(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isFixnum())
    return typeError(M, "even?", "fixnum", Args[0]);
  return Value::boolean(Args[0].asFixnum() % 2 == 0);
}
Value nativeOddP(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isFixnum())
    return typeError(M, "odd?", "fixnum", Args[0]);
  return Value::boolean(Args[0].asFixnum() % 2 != 0);
}
Value nativePositiveP(VM &M, Value *Args, uint32_t) {
  int Cmp;
  if (!numCompare(Args[0], Value::fixnum(0), Cmp))
    return typeError(M, "positive?", "number", Args[0]);
  return Value::boolean(Cmp != CmpUnordered && Cmp > 0);
}
Value nativeNegativeP(VM &M, Value *Args, uint32_t) {
  int Cmp;
  if (!numCompare(Args[0], Value::fixnum(0), Cmp))
    return typeError(M, "negative?", "number", Args[0]);
  return Value::boolean(Cmp < 0);
}
Value nativeZeroP(VM &M, Value *Args, uint32_t) {
  int Cmp;
  if (!numCompare(Args[0], Value::fixnum(0), Cmp))
    return typeError(M, "zero?", "number", Args[0]);
  return Value::boolean(Cmp == 0);
}

Value nativeEqP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0] == Args[1]);
}
Value nativeEqvP(VM &, Value *Args, uint32_t) {
  return Value::boolean(isEqv(Args[0], Args[1]));
}
Value nativeEqualP(VM &, Value *Args, uint32_t) {
  return Value::boolean(isEqual(Args[0], Args[1]));
}
Value nativeNot(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isFalse());
}
Value nativeBooleanP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isBoolean());
}
Value nativeSymbolP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isSymbol());
}
Value nativeStringP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isString());
}
Value nativeCharP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isChar());
}
Value nativeProcedureP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isProcedure());
}
Value nativeVectorP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isVector());
}
Value nativeNullP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isNil());
}
Value nativePairP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isPair());
}
Value nativeVoidP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isVoid());
}
Value nativeVoid(VM &, Value *, uint32_t) { return Value::voidValue(); }
Value nativeEofObjectP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isEof());
}

// --- Vectors -----------------------------------------------------------------

Value nativeMakeVector(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isFixnum() || Args[0].asFixnum() < 0)
    return typeError(M, "make-vector", "nonnegative fixnum", Args[0]);
  Value Fill = NArgs > 1 ? Args[1] : Value::fixnum(0);
  return M.heap().makeVector(static_cast<uint32_t>(Args[0].asFixnum()), Fill);
}

Value nativeVector(VM &M, Value *Args, uint32_t NArgs) {
  RootedValues Roots(M.heap());
  for (uint32_t I = 0; I < NArgs; ++I)
    Roots.push(Args[I]);
  Value V = M.heap().makeVector(NArgs, Value::fixnum(0));
  for (uint32_t I = 0; I < NArgs; ++I)
    asVector(V)->Elems[I] = Roots[I];
  return V;
}

Value nativeVectorLength(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isVector())
    return typeError(M, "vector-length", "vector", Args[0]);
  return Value::fixnum(asVector(Args[0])->Len);
}

Value nativeVectorRef(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isVector() || !Args[1].isFixnum())
    return typeError(M, "vector-ref", "vector and index", Args[0]);
  VectorObj *V = asVector(Args[0]);
  int64_t I = Args[1].asFixnum();
  if (I < 0 || I >= V->Len)
    return M.raiseError("vector-ref: index out of range");
  return V->Elems[I];
}

Value nativeVectorSet(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isVector() || !Args[1].isFixnum())
    return typeError(M, "vector-set!", "vector and index", Args[0]);
  VectorObj *V = asVector(Args[0]);
  int64_t I = Args[1].asFixnum();
  if (I < 0 || I >= V->Len)
    return M.raiseError("vector-set!: index out of range");
  V->Elems[I] = Args[2];
  return Value::voidValue();
}

Value nativeVectorFill(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isVector())
    return typeError(M, "vector-fill!", "vector", Args[0]);
  VectorObj *V = asVector(Args[0]);
  for (uint32_t I = 0; I < V->Len; ++I)
    V->Elems[I] = Args[1];
  return Value::voidValue();
}

Value nativeVectorToList(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isVector())
    return typeError(M, "vector->list", "vector", Args[0]);
  GCRoot VecRoot(M.heap(), Args[0]);
  GCRoot Acc(M.heap(), Value::nil());
  for (uint32_t I = asVector(VecRoot.get())->Len; I > 0; --I)
    Acc.set(
        M.heap().makePair(asVector(VecRoot.get())->Elems[I - 1], Acc.get()));
  return Acc.get();
}

Value nativeListToVector(VM &M, Value *Args, uint32_t) {
  int64_t Len = listLength(Args[0]);
  if (Len < 0)
    return typeError(M, "list->vector", "proper list", Args[0]);
  GCRoot ListRoot(M.heap(), Args[0]);
  Value V = M.heap().makeVector(static_cast<uint32_t>(Len), Value::fixnum(0));
  Value P = ListRoot.get();
  for (int64_t I = 0; I < Len; ++I) {
    asVector(V)->Elems[I] = car(P);
    P = cdr(P);
  }
  return V;
}

Value nativeVectorCopy(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isVector())
    return typeError(M, "vector-copy", "vector", Args[0]);
  GCRoot VecRoot(M.heap(), Args[0]);
  uint32_t Len = asVector(Args[0])->Len;
  Value V = M.heap().makeVector(Len, Value::fixnum(0));
  for (uint32_t I = 0; I < Len; ++I)
    asVector(V)->Elems[I] = asVector(VecRoot.get())->Elems[I];
  return V;
}

// --- Boxes -------------------------------------------------------------------

Value nativeBox(VM &M, Value *Args, uint32_t) {
  return M.heap().makeBox(Args[0]);
}
Value nativeUnbox(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isBox())
    return typeError(M, "unbox", "box", Args[0]);
  return asBox(Args[0])->Val;
}
Value nativeSetBox(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isBox())
    return typeError(M, "set-box!", "box", Args[0]);
  asBox(Args[0])->Val = Args[1];
  return Value::voidValue();
}
Value nativeBoxP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isBox());
}

// --- Hash tables -------------------------------------------------------------

Value nativeMakeHash(VM &M, Value *, uint32_t) {
  return M.heap().makeHashTable(/*EqualBased=*/false);
}
Value nativeMakeEqualHash(VM &M, Value *, uint32_t) {
  return M.heap().makeHashTable(/*EqualBased=*/true);
}
Value nativeHashP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isHashTable());
}
Value nativeHashSet(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isHashTable())
    return typeError(M, "hash-set!", "hash table", Args[0]);
  htSet(M.heap(), Args[0], Args[1], Args[2]);
  return Value::voidValue();
}
Value nativeHashRef(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isHashTable())
    return typeError(M, "hash-ref", "hash table", Args[0]);
  Value Dflt = NArgs > 2 ? Args[2] : Value::False();
  return htGet(Args[0], Args[1], Dflt);
}
Value nativeHashRemove(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isHashTable())
    return typeError(M, "hash-remove!", "hash table", Args[0]);
  return Value::boolean(htDelete(Args[0], Args[1]));
}
Value nativeHashCount(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isHashTable())
    return typeError(M, "hash-count", "hash table", Args[0]);
  return Value::fixnum(htCount(Args[0]));
}
Value nativeHashKeys(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isHashTable())
    return typeError(M, "hash-keys", "hash table", Args[0]);
  GCRoot TableRoot(M.heap(), Args[0]);
  GCRoot Acc(M.heap(), Value::nil());
  // Collect first (htForEach forbids mutation; allocation is fine since
  // the table's vectors are rooted via the table).
  std::vector<Value> Keys;
  htForEach(TableRoot.get(), [&](Value K, Value) { Keys.push_back(K); });
  RootedValues Roots(M.heap());
  for (Value K : Keys)
    Roots.push(K);
  for (size_t I = Keys.size(); I > 0; --I)
    Acc.set(M.heap().makePair(Roots[I - 1], Acc.get()));
  return Acc.get();
}

// --- Output ------------------------------------------------------------------

Value outputValue(VM &M, Value V, bool Display, Value *Args, uint32_t NArgs,
                  uint32_t PortIdx) {
  Value Port =
      NArgs > PortIdx ? Args[PortIdx] : currentOutputPort(M);
  if (!Port.isPort())
    return typeError(M, "write/display", "port", Port);
  std::string Out;
  printValue(Out, V, Display);
  portWrite(M, Port, Out);
  return Value::voidValue();
}

Value nativeDisplay(VM &M, Value *Args, uint32_t NArgs) {
  return outputValue(M, Args[0], /*Display=*/true, Args, NArgs, 1);
}
Value nativeWrite(VM &M, Value *Args, uint32_t NArgs) {
  return outputValue(M, Args[0], /*Display=*/false, Args, NArgs, 1);
}
Value nativeNewline(VM &M, Value *Args, uint32_t NArgs) {
  Value Port = NArgs > 0 ? Args[0] : currentOutputPort(M);
  if (!Port.isPort())
    return typeError(M, "newline", "port", Port);
  portWrite(M, Port, "\n");
  return Value::voidValue();
}

Value nativeOpenOutputString(VM &M, Value *, uint32_t) {
  return M.heap().makeStringPort(M.heap().intern("string"));
}

Value nativeGetOutputString(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isPort() || asPort(Args[0])->H.Aux != 1)
    return typeError(M, "get-output-string", "string port", Args[0]);
  std::string *Buf = static_cast<std::string *>(asPort(Args[0])->Stream);
  return M.heap().makeString(*Buf);
}

Value nativePortP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isPort());
}

// --- Misc --------------------------------------------------------------------

Value nativeFatalError(VM &M, Value *Args, uint32_t NArgs) {
  std::string Msg;
  for (uint32_t I = 0; I < NArgs; ++I) {
    if (I)
      Msg += ' ';
    printValue(Msg, Args[I], /*Display=*/true);
  }
  return M.raiseError(Msg);
}

/// (#%fatal-limit kind msg ...): like #%fatal-error but classifies the
/// failure as the named limit trip, so the embedding API (and the REPL's
/// exit code) can tell an uncaught limit exception from a plain error.
/// The prelude routes uncaught limit exceptions here.
Value nativeFatalLimit(VM &M, Value *Args, uint32_t NArgs) {
  ErrorKind Kind = ErrorKind::Runtime;
  if (Args[0].isSymbol()) {
    std::string Name = displayToString(Args[0]);
    if (Name == "heap-limit")
      Kind = ErrorKind::HeapLimit;
    else if (Name == "stack-limit")
      Kind = ErrorKind::StackLimit;
    else if (Name == "timeout")
      Kind = ErrorKind::Timeout;
    else if (Name == "interrupt")
      Kind = ErrorKind::Interrupt;
  }
  std::string Msg;
  for (uint32_t I = 1; I < NArgs; ++I) {
    if (I > 1)
      Msg += ' ';
    printValue(Msg, Args[I], /*Display=*/true);
  }
  if (Msg.empty())
    Msg = "limit exceeded";
  return M.raiseErrorKind(Kind, Msg);
}

/// (#%set-snapshot-key! key): the prelude hands the VM its trace mark key
/// so raiseError can attach a stack snapshot to fatal reports.
Value nativeSetSnapshotKey(VM &M, Value *Args, uint32_t) {
  M.SnapshotKey = Args[0];
  return Value::voidValue();
}

/// (#%fault-stats) -> ((site hits injected) ...) for every fault site.
Value nativeFaultStats(VM &M, Value *, uint32_t) {
  RootedValues Rows(M.heap());
  for (int I = 0; I < NumFaultSites; ++I) {
    FaultSite S = static_cast<FaultSite>(I);
    GCRoot Sym(M.heap(), M.heap().intern(faultSiteName(S)));
    GCRoot Row(M.heap(),
               M.heap().makePair(
                   Value::fixnum(static_cast<int64_t>(M.faults().injected(S))),
                   Value::nil()));
    Row.set(M.heap().makePair(
        Value::fixnum(static_cast<int64_t>(M.faults().hits(S))), Row.get()));
    Row.set(M.heap().makePair(Sym.get(), Row.get()));
    Rows.push(Row.get());
  }
  GCRoot Acc(M.heap(), Value::nil());
  for (size_t I = Rows.size(); I > 0; --I)
    Acc.set(M.heap().makePair(Rows[I - 1], Acc.get()));
  return Acc.get();
}

Value nativeApply(VM &M, Value *Args, uint32_t NArgs) {
  // (apply f a b ... rest-list)
  GCRoot FnRoot(M.heap(), Args[0]);
  std::vector<Value> CallArgs;
  for (uint32_t I = 1; I + 1 < NArgs; ++I)
    CallArgs.push_back(Args[I]);
  Value Rest = Args[NArgs - 1];
  if (NArgs > 1) {
    if (listLength(Rest) < 0)
      return typeError(M, "apply", "proper list", Rest);
    for (Value P = Rest; P.isPair(); P = cdr(P))
      CallArgs.push_back(car(P));
  }
  M.scheduleTailCall(FnRoot.get(), CallArgs.data(),
                     static_cast<uint32_t>(CallArgs.size()));
  return Value::voidValue();
}

Value nativeGensym(VM &M, Value *Args, uint32_t NArgs) {
  std::string Prefix = "g";
  if (NArgs > 0 && (Args[0].isSymbol() || Args[0].isString())) {
    uint32_t Len;
    const char *Data = stringData(Args[0], Len);
    Prefix.assign(Data, Len);
  }
  return M.heap().gensym(Prefix.c_str());
}

Value nativeCollectGarbage(VM &M, Value *, uint32_t) {
  M.heap().collect();
  return Value::voidValue();
}

Value nativeCurrentMillis(VM &M, Value *, uint32_t) {
  return M.heap().makeFlonum(
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count()) /
      1000.0);
}

/// (sleep-ms n) waits n milliseconds (clamped to [0, 60000]; NaN waits
/// not at all — the old cast of NaN*1000 to int64_t was undefined).
/// Models a request handler waiting on a backend.
///
/// With fiber scheduling active the wait is cooperative: the call tail-
/// calls the prelude's #%fiber-sleep, which parks the calling fiber on a
/// timer so sibling fibers (and, in a fiber pool, other jobs on this
/// worker) run during the wait.
///
/// Otherwise the engine's thread blocks — but in <=10ms chunks that poll
/// for pending interrupts, budget trips, and passed deadlines between
/// chunks, so `(sleep-ms 60000)` no longer pins a requestInterrupt() (or
/// a timeout) for the full minute: delivery lands within one chunk.
Value nativeSleepMs(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isNumber())
    return typeError(M, "sleep-ms", "number", Args[0]);
  double Ms = toDouble(Args[0]);
  if (!(Ms > 0)) // Negative, zero, and NaN all mean "no wait".
    Ms = 0;
  if (Ms > 60000)
    Ms = 60000;
  if (M.Fibers.schedulingActive() && !M.config().MarkStackMode) {
    Value Sleep = M.getGlobal("#%fiber-sleep");
    if (Sleep.isClosure()) {
      Value A[1] = {M.heap().makeFlonum(Ms)};
      M.scheduleTailCall(Sleep, A, 1);
      return Value::voidValue();
    }
  }
  int64_t LeftUs = static_cast<int64_t>(Ms * 1000.0);
  while (LeftUs > 0) {
    if (M.deliverTripFromNative())
      return Value::voidValue();
    int64_t ChunkUs = LeftUs < 10000 ? LeftUs : 10000;
    std::this_thread::sleep_for(std::chrono::microseconds(ChunkUs));
    LeftUs -= ChunkUs;
  }
  // A signal that lands during the final chunk is still delivered here
  // rather than waiting for the next safe point (there may be none — a
  // toplevel sleep returns straight into Halt).
  M.deliverTripFromNative();
  return Value::voidValue();
}

/// (#%vm-stat 'name) exposes runtime counters to tests and benchmarks.
/// Accepts the short legacy names plus every name in the stats counter
/// table (support/stats.h).
Value nativeVmStat(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isSymbol())
    return typeError(M, "#%vm-stat", "symbol", Args[0]);
  std::string Name = displayToString(Args[0]);
  const VMStats &S = M.stats();
  const HeapStats &HS = M.heap().stats();
  if (Name == "reifications")
    return Value::fixnum(S.Reifications);
  if (Name == "fusions")
    return Value::fixnum(S.UnderflowFusions);
  if (Name == "underflow-copies")
    return Value::fixnum(S.UnderflowCopies);
  if (Name == "captures")
    return Value::fixnum(S.ContinuationCaptures);
  if (Name == "applies")
    return Value::fixnum(S.ContinuationApplies);
  if (Name == "overflows")
    return Value::fixnum(S.SegmentOverflows);
  if (Name == "collections")
    return Value::fixnum(HS.Collections);
  if (Name == "gc-one-shot-promotions")
    return Value::fixnum(HS.OneShotPromotions);
  if (Name == "mark-stack-size")
    return Value::fixnum(M.MarkStack.size());
  int N = 0;
  const StatsCounterDesc *Table = statsCounters(N);
  for (int I = 0; I < N; ++I)
    if (Name == Table[I].Name)
      return Value::fixnum(S.*(Table[I].Field));
  return M.raiseError("#%vm-stat: unknown counter " + Name);
}

/// (runtime-stats) -> association list ((name . count) ...) of every VM
/// event counter plus the GC-side counters, newest schema in
/// support/stats.h. The alist order matches the counter table.
Value nativeRuntimeStats(VM &M, Value *, uint32_t) {
  const VMStats &S = M.stats();
  const HeapStats &HS = M.heap().stats();
  RootedValues Cells(M.heap());
  auto AddCounter = [&](const char *Name, uint64_t V) {
    GCRoot Sym(M.heap(), M.heap().intern(Name));
    Cells.push(M.heap().makePair(Sym.get(), Value::fixnum(V)));
  };
  int N = 0;
  const StatsCounterDesc *Table = statsCounters(N);
  for (int I = 0; I < N; ++I)
    AddCounter(Table[I].Name, S.*(Table[I].Field));
  AddCounter("gc-collections", HS.Collections);
  AddCounter("gc-one-shot-promotions", HS.OneShotPromotions);
  AddCounter("gc-bytes-allocated", HS.BytesAllocated);
  // Observability meta-telemetry: a nonzero drop count means the trace
  // ring wrapped and a Perfetto export holds only the newest window.
  AddCounter("trace-events-dropped", M.trace().dropped());
  GCRoot Acc(M.heap(), Value::nil());
  for (size_t I = Cells.size(); I > 0; --I)
    Acc.set(M.heap().makePair(Cells[I - 1], Acc.get()));
  return Acc.get();
}

/// (runtime-stats-reset!) zeroes the VM event counters (GC counters are
/// cumulative for the heap's lifetime and are not reset).
Value nativeRuntimeStatsReset(VM &M, Value *, uint32_t) {
  M.stats().reset();
  return Value::voidValue();
}

/// (runtime-trace-start!) or (runtime-trace-start! capacity): clears the
/// trace ring (resizing it when a capacity is given) and starts recording.
Value nativeTraceStart(VM &M, Value *Args, uint32_t NArgs) {
  uint32_t Cap = 0;
  if (NArgs > 0) {
    if (!Args[0].isFixnum() || Args[0].asFixnum() <= 0)
      return typeError(M, "runtime-trace-start!", "positive fixnum", Args[0]);
    Cap = static_cast<uint32_t>(Args[0].asFixnum());
  }
  M.trace().start(Cap);
  return Value::voidValue();
}

Value nativeTraceStop(VM &M, Value *, uint32_t) {
  M.trace().stop();
  return Value::voidValue();
}

/// (runtime-trace-dump) returns the Chrome trace-event JSON as a string;
/// (runtime-trace-dump "file.json") writes it to the file and returns #t
/// (#f on an I/O failure).
Value nativeTraceDump(VM &M, Value *Args, uint32_t NArgs) {
  if (NArgs == 0) {
    std::string S = M.trace().toJson();
    return M.heap().makeString(S.data(), static_cast<uint32_t>(S.size()));
  }
  if (!Args[0].isString())
    return typeError(M, "runtime-trace-dump", "string", Args[0]);
  StringObj *S = asString(Args[0]);
  std::string Path(S->Data, S->Len);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return Value::False();
  bool Ok = M.trace().writeJson(F);
  std::fclose(F);
  return Value::boolean(Ok);
}

/// (profiler-start!) / (profiler-start! hz) / (profiler-start! hz capacity):
/// starts the safe-point sampling profiler on this engine (see
/// support/profiler.h). Samples attribute to the current procedure plus
/// the `#%trace-key` mark stack kept by with-stack-frame, so flamegraphs
/// show named Scheme procedures without any frame walking.
Value nativeProfilerStart(VM &M, Value *Args, uint32_t NArgs) {
  uint32_t Hz = SamplingProfiler::DefaultHz;
  uint32_t Cap = 0;
  if (NArgs > 0) {
    if (!Args[0].isFixnum() || Args[0].asFixnum() <= 0)
      return typeError(M, "profiler-start!", "positive fixnum", Args[0]);
    Hz = static_cast<uint32_t>(Args[0].asFixnum());
  }
  if (NArgs > 1) {
    if (!Args[1].isFixnum() || Args[1].asFixnum() <= 0)
      return typeError(M, "profiler-start!", "positive fixnum", Args[1]);
    Cap = static_cast<uint32_t>(Args[1].asFixnum());
  }
  M.profiler().start(M, Hz, Cap);
  return Value::voidValue();
}

/// (profiler-stop!) stops the sampler thread; captured samples stay
/// exportable. Returns the number of samples held.
Value nativeProfilerStop(VM &M, Value *, uint32_t) {
  M.profiler().stop();
  return Value::fixnum(static_cast<int64_t>(M.profiler().sampleCount()));
}

/// (profiler-dump) returns the collapsed-stack profile as a string;
/// (profiler-dump "file") writes it to the file and returns #t (#f on an
/// I/O failure). One "frames count" line per distinct stack —
/// flamegraph.pl / speedscope compatible.
Value nativeProfilerDump(VM &M, Value *Args, uint32_t NArgs) {
  if (NArgs == 0) {
    std::string S = M.profiler().toCollapsed();
    return M.heap().makeString(S.data(), static_cast<uint32_t>(S.size()));
  }
  if (!Args[0].isString())
    return typeError(M, "profiler-dump", "string", Args[0]);
  StringObj *S = asString(Args[0]);
  std::string Path(S->Data, S->Len);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return Value::False();
  bool Ok = M.profiler().writeCollapsed(F);
  std::fclose(F);
  return Value::boolean(Ok);
}

/// (runtime-metrics) -> the engine's `cmarks-metrics-v1` JSON document as
/// a string: every (runtime-stats) counter plus heap gauges and
/// trace/profile meta-telemetry, in the same schema EnginePool exports.
Value nativeRuntimeMetrics(VM &M, Value *, uint32_t) {
  MetricsRegistry R;
  M.fillMetrics(R);
  std::string S = R.json("engine");
  return M.heap().makeString(S.data(), static_cast<uint32_t>(S.size()));
}

/// (runtime-metrics-text) -> the same snapshot in Prometheus text
/// exposition format (scrape-ready).
Value nativeRuntimeMetricsText(VM &M, Value *, uint32_t) {
  MetricsRegistry R;
  M.fillMetrics(R);
  std::string S = R.prometheusText();
  return M.heap().makeString(S.data(), static_cast<uint32_t>(S.size()));
}

/// Label text for a user trace event: symbols and strings contribute
/// their characters, anything else its written form.
std::string traceLabelOf(Value V) {
  if (V.isSymbol()) {
    SymbolObj *S = asSymbol(V);
    return std::string(S->Data, S->Len);
  }
  if (V.isString()) {
    StringObj *S = asString(V);
    return std::string(S->Data, S->Len);
  }
  return writeToString(V);
}

/// (#%trace-span-begin label): opens a labeled slice in the trace (the
/// substrate of call-with-profiling). No-ops while tracing is stopped.
Value nativeTraceSpanBegin(VM &M, Value *Args, uint32_t NArgs) {
  if (M.trace().Enabled) {
    std::string L = NArgs > 0 ? traceLabelOf(Args[0]) : std::string();
    M.trace().record(TraceEv::SpanBegin, L.data(), L.size());
  }
  return Value::voidValue();
}

Value nativeTraceSpanEnd(VM &M, Value *, uint32_t) {
  CMK_TRACE_EV(M.trace(), SpanEnd);
  return Value::voidValue();
}

/// (#%trace-instant label): a labeled instant (stack snapshots).
Value nativeTraceInstant(VM &M, Value *Args, uint32_t NArgs) {
  if (M.trace().Enabled) {
    std::string L = NArgs > 0 ? traceLabelOf(Args[0]) : std::string();
    M.trace().record(TraceEv::Instant, L.data(), L.size());
  }
  return Value::voidValue();
}

Value nativeAdd1(VM &M, Value *Args, uint32_t) {
  NumResult R = numAdd(M.heap(), Args[0], Value::fixnum(1));
  if (!R.Ok)
    return typeError(M, "add1", "number", Args[0]);
  return R.V;
}

Value nativeSub1(VM &M, Value *Args, uint32_t) {
  NumResult R = numSub(M.heap(), Args[0], Value::fixnum(1));
  if (!R.Ok)
    return typeError(M, "sub1", "number", Args[0]);
  return R.V;
}

Value nativeSymbolToString(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isSymbol())
    return typeError(M, "symbol->string", "symbol", Args[0]);
  SymbolObj *S = asSymbol(Args[0]);
  return M.heap().makeString(S->Data, S->Len);
}

Value nativeStringToSymbol(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isString())
    return typeError(M, "string->symbol", "string", Args[0]);
  StringObj *S = asString(Args[0]);
  return M.heap().intern(S->Data, S->Len);
}

} // namespace

void cmk::installPrimitives(VM &M) {
  M.defineNative("+", nativeAdd, 0, -1);
  M.defineNative("-", nativeSub, 1, -1);
  M.defineNative("*", nativeMul, 0, -1);
  M.defineNative("/", nativeDiv, 1, -1);
  M.defineNative("<", nativeLt, 2, -1);
  M.defineNative("<=", nativeLe, 2, -1);
  M.defineNative(">", nativeGt, 2, -1);
  M.defineNative(">=", nativeGe, 2, -1);
  M.defineNative("=", nativeNumEq, 2, -1);
  M.defineNative("quotient", nativeQuotient, 2, 2);
  M.defineNative("remainder", nativeRemainder, 2, 2);
  M.defineNative("modulo", nativeModulo, 2, 2);
  M.defineNative("min", nativeMin, 1, -1);
  M.defineNative("max", nativeMax, 1, -1);
  M.defineNative("abs", nativeAbs, 1, 1);
  M.defineNative("sqrt", nativeSqrt, 1, 1);
  M.defineNative("sin", nativeSin, 1, 1);
  M.defineNative("cos", nativeCos, 1, 1);
  M.defineNative("exp", nativeExp, 1, 1);
  M.defineNative("log", nativeLog, 1, 1);
  M.defineNative("atan", nativeAtan, 1, 2);
  M.defineNative("expt", nativeExpt, 2, 2);
  M.defineNative("floor", nativeFloor, 1, 1);
  M.defineNative("ceiling", nativeCeiling, 1, 1);
  M.defineNative("truncate", nativeTruncate, 1, 1);
  M.defineNative("round", nativeRound, 1, 1);
  M.defineNative("exact->inexact", nativeExactToInexact, 1, 1);
  M.defineNative("inexact->exact", nativeInexactToExact, 1, 1);
  M.defineNative("add1", nativeAdd1, 1, 1);
  M.defineNative("sub1", nativeSub1, 1, 1);
  M.defineNative("number?", nativeNumberP, 1, 1);
  M.defineNative("integer?", nativeIntegerP, 1, 1);
  M.defineNative("fixnum?", nativeFixnumP, 1, 1);
  M.defineNative("flonum?", nativeFlonumP, 1, 1);
  M.defineNative("even?", nativeEvenP, 1, 1);
  M.defineNative("odd?", nativeOddP, 1, 1);
  M.defineNative("positive?", nativePositiveP, 1, 1);
  M.defineNative("negative?", nativeNegativeP, 1, 1);
  M.defineNative("zero?", nativeZeroP, 1, 1);
  M.defineNative("eq?", nativeEqP, 2, 2);
  M.defineNative("eqv?", nativeEqvP, 2, 2);
  M.defineNative("equal?", nativeEqualP, 2, 2);
  M.defineNative("not", nativeNot, 1, 1);
  M.defineNative("boolean?", nativeBooleanP, 1, 1);
  M.defineNative("symbol?", nativeSymbolP, 1, 1);
  M.defineNative("string?", nativeStringP, 1, 1);
  M.defineNative("char?", nativeCharP, 1, 1);
  M.defineNative("procedure?", nativeProcedureP, 1, 1);
  M.defineNative("vector?", nativeVectorP, 1, 1);
  M.defineNative("null?", nativeNullP, 1, 1);
  M.defineNative("pair?", nativePairP, 1, 1);
  M.defineNative("void?", nativeVoidP, 1, 1);
  M.defineNative("void", nativeVoid, 0, -1);
  M.defineNative("eof-object?", nativeEofObjectP, 1, 1);
  M.defineNative("make-vector", nativeMakeVector, 1, 2);
  M.defineNative("vector", nativeVector, 0, -1);
  M.defineNative("vector-length", nativeVectorLength, 1, 1);
  M.defineNative("vector-ref", nativeVectorRef, 2, 2);
  M.defineNative("vector-set!", nativeVectorSet, 3, 3);
  M.defineNative("vector-fill!", nativeVectorFill, 2, 2);
  M.defineNative("vector->list", nativeVectorToList, 1, 1);
  M.defineNative("list->vector", nativeListToVector, 1, 1);
  M.defineNative("vector-copy", nativeVectorCopy, 1, 1);
  M.defineNative("box", nativeBox, 1, 1);
  M.defineNative("unbox", nativeUnbox, 1, 1);
  M.defineNative("set-box!", nativeSetBox, 2, 2);
  M.defineNative("box?", nativeBoxP, 1, 1);
  M.defineNative("make-hash", nativeMakeHash, 0, 0);
  M.defineNative("make-equal-hash", nativeMakeEqualHash, 0, 0);
  M.defineNative("hash?", nativeHashP, 1, 1);
  M.defineNative("hash-set!", nativeHashSet, 3, 3);
  M.defineNative("hash-ref", nativeHashRef, 2, 3);
  M.defineNative("hash-remove!", nativeHashRemove, 2, 2);
  M.defineNative("hash-count", nativeHashCount, 1, 1);
  M.defineNative("hash-keys", nativeHashKeys, 1, 1);
  M.defineNative("display", nativeDisplay, 1, 2);
  M.defineNative("write", nativeWrite, 1, 2);
  M.defineNative("newline", nativeNewline, 0, 1);
  M.defineNative("open-output-string", nativeOpenOutputString, 0, 0);
  M.defineNative("get-output-string", nativeGetOutputString, 1, 1);
  M.defineNative("port?", nativePortP, 1, 1);
  M.defineNative("#%fatal-error", nativeFatalError, 1, -1);
  M.defineNative("#%fatal-limit", nativeFatalLimit, 1, -1);
  M.defineNative("#%set-snapshot-key!", nativeSetSnapshotKey, 1, 1);
  M.defineNative("#%fault-stats", nativeFaultStats, 0, 0);
  M.defineNative("error", nativeFatalError, 1, -1); // Overridden in prelude.
  M.defineNative("apply", nativeApply, 1, -1);
  M.defineNative("gensym", nativeGensym, 0, 1);
  M.defineNative("collect-garbage", nativeCollectGarbage, 0, 0);
  M.defineNative("current-inexact-milliseconds", nativeCurrentMillis, 0, 0);
  M.defineNative("sleep-ms", nativeSleepMs, 1, 1);
  M.defineNative("#%vm-stat", nativeVmStat, 1, 1);
  M.defineNative("runtime-stats", nativeRuntimeStats, 0, 0);
  M.defineNative("runtime-stats-reset!", nativeRuntimeStatsReset, 0, 0);
  M.defineNative("runtime-trace-start!", nativeTraceStart, 0, 1);
  M.defineNative("runtime-trace-stop!", nativeTraceStop, 0, 0);
  M.defineNative("runtime-trace-dump", nativeTraceDump, 0, 1);
  M.defineNative("#%trace-span-begin", nativeTraceSpanBegin, 0, 1);
  M.defineNative("#%trace-span-end", nativeTraceSpanEnd, 0, 0);
  M.defineNative("#%trace-instant", nativeTraceInstant, 0, 1);
  M.defineNative("profiler-start!", nativeProfilerStart, 0, 2);
  M.defineNative("profiler-stop!", nativeProfilerStop, 0, 0);
  M.defineNative("profiler-dump", nativeProfilerDump, 0, 1);
  M.defineNative("runtime-metrics", nativeRuntimeMetrics, 0, 0);
  M.defineNative("runtime-metrics-text", nativeRuntimeMetricsText, 0, 0);
  M.defineNative("symbol->string", nativeSymbolToString, 1, 1);
  M.defineNative("string->symbol", nativeStringToSymbol, 1, 1);
}
