//===- vm/stacks.cpp - Stack segments, reification, underflow --*- C++ -*-===//
///
/// \file
/// The heart of the paper's runtime support (sections 5 and 6): splitting
/// stacks into underflow records when a continuation is reified, fusing
/// opportunistic one-shot splits back together on underflow, and copying
/// captured frames on continuation application.
///
//===----------------------------------------------------------------------===//

#include "vm/vm.h"

#include <cstdio>
#include <cstring>

using namespace cmk;

namespace {

/// Segment-recycling bookkeeping for a freshly minted record: an
/// opportunistic record holds a counted reference to its segment (released
/// when the record is consumed at underflow); a full record pins the
/// segment for good, since it may restore from it arbitrarily later.
void noteRecordRef(ContObj *K) {
  if (!K->Seg.isKind(ObjKind::StackSeg))
    return;
  StackSegObj *S = asStackSeg(K->Seg);
  if (K->shot() == ContShot::Full)
    S->H.Flags |= objflags::SegPinned;
  else
    ++S->RecordRefs;
}

/// The underflow handler consumed \p K: drop its counted segment
/// reference. Full/promoted records keep their pin instead (the guarded
/// decrement makes a promotion after minting harmless either way).
void consumeRecordRef(ContObj *K) {
  if (K->shot() != ContShot::Opportunistic ||
      !K->Seg.isKind(ObjKind::StackSeg))
    return;
  StackSegObj *S = asStackSeg(K->Seg);
  if (S->RecordRefs > 0)
    --S->RecordRefs;
}

/// A record is being made restorable-at-any-time (call/cc promotion,
/// explicit application, composable capture): its segment must never be
/// recycled under it.
void pinRecordSegment(ContObj *K) {
  if (K->Seg.isKind(ObjKind::StackSeg))
    asStackSeg(K->Seg)->H.Flags |= objflags::SegPinned;
}

} // namespace

void VM::maybeRecycleSegment(Value SegV) {
  if (!Cfg.EnableSegmentRecycling || Cfg.MarkStackMode)
    return;
  if (!SegV.isKind(ObjKind::StackSeg) || SegV == Regs.Seg)
    return;
  StackSegObj *S = asStackSeg(SegV);
  if (S->RecordRefs != 0 ||
      (S->H.Flags & (objflags::SegPinned | objflags::SegPooled)))
    return;
  H.recycleStackSeg(SegV);
}

void VM::reifyCurrentFrame() {
  StackSegObj *S = asStackSeg(Regs.Seg);
  if (S->Slots[Regs.Fp + 1].isUnderflowSentinel())
    return; // Already reified; NextK is this frame's record.

  // Failing fault site: exhaust the heap budget exactly at a reification,
  // the paper's most delicate allocation point (the record and the frame
  // split must both complete out of headroom).
  if (CMK_FAULT(&Faults, ReifyOom))
    H.injectHeapTrip();

  ++Stats.Reifications;
  ++Stats.ReifyTailFrame;
  CMK_TRACE_EV(Trace, ReifyTailFrame);
  Value KV = H.makeCont();
  ContObj *K = asCont(KV);
  S = asStackSeg(Regs.Seg);

  K->Seg = Regs.Seg;
  K->Lo = Regs.Base;
  K->Hi = Regs.Fp;
  K->RetFp = static_cast<uint32_t>(S->Slots[Regs.Fp + 0].asFixnum());
  K->RetCode = S->Slots[Regs.Fp + 1];
  K->RetPc = S->Slots[Regs.Fp + 2];
  K->Marks = Regs.Marks;
  K->Winders = Regs.Winders;
  K->Next = Regs.NextK;
  K->MarkHeight = static_cast<uint32_t>(MarkStack.size());
  K->setShot(Cfg.EnableOneShots ? ContShot::Opportunistic : ContShot::Full);
  noteRecordRef(K);

  S->Slots[Regs.Fp + 1] = Value::underflowSentinel();
  S->Slots[Regs.Fp + 2] = Value::fixnum(0);
  Regs.Base = Regs.Fp;
  Regs.NextK = KV;
}

Value VM::reifyAtSp(ContShot Shot) {
  if (Regs.Sp == Regs.Base && Regs.NextK.isCont()) {
    // Nothing above the stack base: the continuation is exactly the
    // existing record chain (this happens when a native runs in a frame
    // scheduled at a fresh base). Minting a record here would capture an
    // empty slice with a stale resume point.
    return Regs.NextK;
  }
  if (CMK_FAULT(&Faults, ReifyOom))
    H.injectHeapTrip();
  ++Stats.Reifications;
  ++Stats.ReifySplit;
  CMK_TRACE_EV(Trace, ReifySplit);
  Value KV = H.makeCont();
  ContObj *K = asCont(KV);

  K->Seg = Regs.Seg;
  K->Lo = Regs.Base;
  K->Hi = Regs.Sp;
  K->RetFp = Regs.Fp;
  K->RetCode = Regs.CurCode;
  K->RetPc = Value::fixnum(Regs.Pc);
  K->Marks = Regs.Marks;
  K->Winders = Regs.Winders;
  K->Next = Regs.NextK;
  K->MarkHeight = static_cast<uint32_t>(MarkStack.size());
  K->setShot(Cfg.EnableOneShots ? Shot : ContShot::Full);
  noteRecordRef(K);

  Regs.Base = Regs.Sp;
  Regs.NextK = KV;
  return KV;
}

/// Copies the captured slice of \p K onto a fresh segment and points the
/// registers at it. Restores Fp/Sp from the record; the caller sets the
/// code/pc/marks/winders registers.
static void restoreByCopy(VM &M, ContObj *K) {
  uint32_t Len = K->Hi - K->Lo;
  CMK_CHECK(K->Hi >= K->Lo, "corrupt continuation record (hi < lo)");
  // Restored segments are sized to the slice plus a little headroom:
  // underflow copies are on the hot path once the collector has promoted
  // one-shot records (paper 6), so a return through a promoted record must
  // not pay for a full segment. Execution that grows past the headroom
  // overflows into regular segments.
  uint32_t Cap = Len + 128;
  Value NewSegV = M.heap().makeStackSeg(Cap); // K stays reachable via Regs.
  StackSegObj *NewSeg = asStackSeg(NewSegV);
  // Empty slices (e.g. the base halt record, whose Seg is nil) have
  // nothing to copy and no frame chain to rewrite.
  if (Len > 0) {
    StackSegObj *OldSeg = asStackSeg(K->Seg);
    std::memcpy(NewSeg->Slots, OldSeg->Slots + K->Lo, sizeof(Value) * Len);

    // Rewrite the saved-fp chain to the new segment's indices.
    uint32_t F = K->RetFp - K->Lo;
    while (F > 0) {
      uint32_t OldSaved =
          static_cast<uint32_t>(NewSeg->Slots[F + 0].asFixnum());
      CMK_CHECK(OldSaved >= K->Lo && OldSaved < K->Hi,
                "frame chain escapes the captured slice");
      NewSeg->Slots[F + 0] = Value::fixnum(OldSaved - K->Lo);
      F = OldSaved - K->Lo;
    }
  }

  Value VacatedSegV = M.Regs.Seg;
  M.Regs.Seg = NewSegV;
  M.Regs.Base = 0;
  M.Regs.Fp = K->RetFp - K->Lo;
  M.Regs.Sp = Len;
  // The segment just abandoned is finished with unless some record still
  // holds a slice of it (checked inside).
  M.maybeRecycleSegment(VacatedSegV);
}

bool VM::underflow(Value Result) {
  // Pass-through records (prompt metadata) only restore the marks and
  // winder registers; the value continues to the next record directly.
  while (Regs.NextK.isCont() &&
         asCont(Regs.NextK)->RetCode == ReturnCode) {
    ContObj *K = asCont(Regs.NextK);
    Regs.Marks = K->Marks;
    Regs.Winders = K->Winders;
    if (Cfg.MarkStackMode && MarkStack.size() > K->MarkHeight)
      MarkStack.resize(K->MarkHeight);
    Regs.NextK = K->Next;
  }

  if (Regs.NextK.isNil()) {
    // Process bottom: the run is complete.
    Regs.Marks = Value::nil();
    setSlot(Regs.Sp, Result); // Keep the result traceable.
    ++Regs.Sp;
    return false;
  }

  GCRoot ResultRoot(H, Result);
  Value KV = Regs.NextK;
  ContObj *K = asCont(KV);
  if (K->isExplicitOneShot())
    K->setUsed(); // Returning through a one-shot consumes it.

  if (K->shot() == ContShot::Opportunistic && K->Seg == Regs.Seg &&
      K->Hi == Regs.Base && !CMK_FAULT(&Faults, NoFuse)) {
    // Paper section 6: the split stack is still contiguous with the current
    // one; fuse them back without copying.
    ++Stats.UnderflowFusions;
    CMK_TRACE_EV(Trace, UnderflowFuse);
    consumeRecordRef(K);
    Regs.Base = K->Lo;
    Regs.Fp = K->RetFp;
    Regs.Sp = K->Hi;
  } else {
    ++Stats.UnderflowCopies;
    CMK_TRACE_EV(Trace, UnderflowCopy);
    // Returning through the record consumes it: its reference is released
    // before the copy so both the vacated segment (inside restoreByCopy)
    // and the record's own source segment can rejoin the pool.
    consumeRecordRef(K);
    restoreByCopy(*this, K);
    maybeRecycleSegment(K->Seg);
  }

  Regs.CurCode = K->RetCode;
  Regs.Pc = static_cast<uint32_t>(K->RetPc.asFixnum());
  if (Trace.Enabled) {
    // Returning through the record pops every attachment the register
    // holds beyond the record's marks: the end of those wcm extents
    // (categories whose pop is implicit in the reified return).
    for (Value P = Regs.Marks; P.isPair() && !(P == K->Marks); P = cdr(P))
      Trace.record(TraceEv::MarksPop);
  }
  Regs.Marks = K->Marks;
  Regs.Winders = K->Winders;
  Regs.NextK = K->Next;
  if (Cfg.MarkStackMode && MarkStack.size() > K->MarkHeight)
    MarkStack.resize(K->MarkHeight);

  setSlot(Regs.Sp, ResultRoot.get());
  ++Regs.Sp;
  return true;
}

void VM::applyContinuation(Value KV, Value Result) {
  ++Stats.ContinuationApplies;
  CMK_TRACE_EV(Trace, ContApply);
  NativeJumped = true; // A native driving this replaced the continuation.
  GCRoot KRoot(H, KV), ResultRoot(H, Result);
  ContObj *K = asCont(KV);
  // A one-shot continuation (call/1cc) may be used only once, unless a
  // later call/cc promoted it to a full continuation (paper section 6;
  // promotion clears the one-shot marking).
  if (K->isExplicitOneShot()) {
    if (K->isUsed()) {
      raiseError("one-shot continuation used more than once");
      return;
    }
    K->setUsed();
  }
  // Explicit application must never fuse: the record may be applied again.
  if (K->shot() == ContShot::Opportunistic)
    K->setShot(ContShot::Full);
  pinRecordSegment(K);

  restoreByCopy(*this, K);
  K = asCont(KRoot.get());
  Regs.CurCode = K->RetCode;
  Regs.Pc = static_cast<uint32_t>(K->RetPc.asFixnum());
  Regs.Marks = K->Marks;
  Regs.Winders = K->Winders;
  Regs.NextK = K->Next;
  if (Cfg.MarkStackMode) {
    if (K->MarkStackCopy.isVector()) {
      VectorObj *V = asVector(K->MarkStackCopy);
      MarkStack.clear();
      for (uint32_t I = 0; I + 4 <= V->Len; I += 4)
        MarkStack.push_back({V->Elems[I],
                             static_cast<uint32_t>(V->Elems[I + 1].asFixnum()),
                             V->Elems[I + 2], V->Elems[I + 3]});
    } else if (MarkStack.size() > K->MarkHeight) {
      MarkStack.resize(K->MarkHeight);
    }
  }

  setSlot(Regs.Sp, ResultRoot.get());
  ++Regs.Sp;
}

void VM::jumpToContinuation(Value KV) {
  ++Stats.ContinuationApplies;
  CMK_TRACE_EV(Trace, ContJump);
  NativeJumped = true;
  GCRoot KRoot(H, KV);
  ContObj *K = asCont(KV);
  if (K->shot() == ContShot::Opportunistic)
    K->setShot(ContShot::Full);
  pinRecordSegment(K);
  restoreByCopy(*this, K);
  K = asCont(KRoot.get());
  Regs.CurCode = K->RetCode;
  Regs.Pc = static_cast<uint32_t>(K->RetPc.asFixnum());
  Regs.Marks = K->Marks;
  Regs.Winders = K->Winders;
  Regs.NextK = K->Next;
  if (Cfg.MarkStackMode && MarkStack.size() > K->MarkHeight)
    MarkStack.resize(K->MarkHeight);
}

Value VM::makePassThroughRecord() {
  // A 4-slot slice holding one frame that returns to the underflow
  // sentinel; resuming runs a lone Return, which forwards the value to the
  // record's Next.
  ++Stats.PassThroughRecords;
  Value SegV = H.makeStackSeg(8);
  GCRoot SegRoot(H, SegV);
  Value KV = H.makeCont();
  StackSegObj *S = asStackSeg(SegRoot.get());
  S->Slots[0] = Value::fixnum(0);
  S->Slots[1] = Value::underflowSentinel();
  S->Slots[2] = Value::fixnum(0);
  S->Slots[3] = Value::False();
  ContObj *K = asCont(KV);
  K->Seg = SegRoot.get();
  K->Lo = 0;
  K->Hi = FrameHeaderSlots;
  K->RetFp = 0;
  K->RetCode = ReturnCode;
  K->RetPc = Value::fixnum(0);
  K->Marks = Regs.Marks;
  K->Winders = Regs.Winders;
  K->Next = Regs.NextK;
  K->MarkHeight = static_cast<uint32_t>(MarkStack.size());
  K->setShot(ContShot::Full);
  noteRecordRef(K); // Full: pins its own little segment.
  return KV;
}

void VM::ensureStackSpace(uint32_t Needed) {
  // Overflow at a call boundary splits the stack exactly like a capture:
  // the frames so far become a captured (opportunistic one-shot)
  // continuation and execution continues on a fresh segment. Callers must
  // re-read Regs.Seg/Base/Fp/Sp afterwards.
  StackSegObj *S = asStackSeg(Regs.Seg);
  if (Regs.Sp + Needed <= S->Capacity && !forcedOverflow()) {
    return;
  }
  // The latch is consumed here when the fault (not capacity) brought us in.
  ForceOverflowOnce = false;
  ++Stats.SegmentOverflows;
  CMK_TRACE_EV(Trace, SegmentOverflow, Needed);
  reifyAtSp(ContShot::Opportunistic);
  uint32_t Cap = std::max(Cfg.SegmentSlots, Needed + 1024);
  Value OldSegV = Regs.Seg;
  Value NewSegV = H.makeStackSeg(Cap);
  Regs.Seg = NewSegV;
  Regs.Base = 0;
  Regs.Fp = 0;
  Regs.Sp = 0;
  // Only recyclable when reifyAtSp collapsed to the existing record chain
  // (nothing above the base); otherwise the new record holds a reference.
  maybeRecycleSegment(OldSegV);
}
