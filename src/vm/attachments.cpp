//===- vm/attachments.cpp - Generic attachment primitives ------*- C++ -*-===//
///
/// \file
/// The four continuation-attachment primitives of paper section 7.1 as
/// ordinary natives. The compiler recognizes applications with immediate
/// lambda arguments and emits specialized code (codegen.cpp); any other use
/// — including every use under the "no opt" ablation — lands here
/// (footnote 5: "other uses are treated as regular function references").
///
/// A native's conceptual frame depends on how it was called: in tail
/// position it shares the caller's frame (reify splits at the frame), in
/// non-tail position the conceptual frame is fresh (reify splits at the
/// resume point and a fresh frame never has an attachment).
///
//===----------------------------------------------------------------------===//

#include "vm/vm.h"

using namespace cmk;

namespace {

/// True if the running native's conceptual frame currently carries an
/// attachment; *AttOut receives it.
bool currentFrameAttachment(VM &M, Value &AttOut) {
  if (!M.NativeTailCall)
    return false; // Non-tail: the conceptual frame is fresh.
  StackSegObj *S = asStackSeg(M.Regs.Seg);
  bool Reified = S->Slots[M.Regs.Fp + 1].isUnderflowSentinel();
  if (!Reified)
    return false;
  Value RestMarks =
      M.Regs.NextK.isNil() ? Value::nil() : asCont(M.Regs.NextK)->Marks;
  if (M.Regs.Marks == RestMarks)
    return false;
  AttOut = car(M.Regs.Marks);
  return true;
}

Value restMarksAfterReify(VM &M) {
  return M.Regs.NextK.isNil() ? Value::nil() : asCont(M.Regs.NextK)->Marks;
}

/// Reifies the continuation of the running native call (tail: the caller's
/// frame; non-tail: the resume point).
void reifyForNative(VM &M) {
  CMK_TRACE_EV(M.trace(), AttachOpReify);
  uint64_t ReifiedBefore = M.stats().Reifications;
  if (M.NativeTailCall)
    M.reifyCurrentFrame();
  else
    M.reifyAtSp(ContShot::Opportunistic);
  M.stats().ReifyForAttachOp += M.stats().Reifications - ReifiedBefore;
}

Value nativeCallSetting(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[1].isProcedure())
    return typeError(M, "call-setting-continuation-attachment", "procedure",
                     Args[1]);
  GCRoot Val(M.heap(), Args[0]), Proc(M.heap(), Args[1]);
  reifyForNative(M);
  CMK_TRACE_EV(M.trace(), AttachSet);
  M.Regs.Marks = M.heap().makePair(Val.get(), restMarksAfterReify(M));
  M.scheduleTailCall(Proc.get(), nullptr, 0);
  return Value::voidValue();
}

Value nativeCallGetting(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[1].isProcedure())
    return typeError(M, "call-getting-continuation-attachment", "procedure",
                     Args[1]);
  Value Att = Args[0];
  currentFrameAttachment(M, Att);
  Value CallArgs[1] = {Att};
  M.scheduleTailCall(Args[1], CallArgs, 1);
  return Value::voidValue();
}

Value nativeCallConsuming(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[1].isProcedure())
    return typeError(M, "call-consuming-continuation-attachment", "procedure",
                     Args[1]);
  Value Att = Args[0];
  if (currentFrameAttachment(M, Att)) {
    CMK_TRACE_EV(M.trace(), AttachConsume);
    M.Regs.Marks = asCont(M.Regs.NextK)->Marks;
  }
  Value CallArgs[1] = {Att};
  M.scheduleTailCall(Args[1], CallArgs, 1);
  return Value::voidValue();
}

Value nativeCurrentAttachments(VM &M, Value *Args, uint32_t NArgs) {
  // The marks register already is a Scheme list (paper 7.1).
  return M.Regs.Marks;
}

} // namespace

namespace cmk {

void installAttachmentPrimitives(VM &M) {
  M.defineNative("call-setting-continuation-attachment", nativeCallSetting, 2,
                 2);
  M.defineNative("call-getting-continuation-attachment", nativeCallGetting, 2,
                 2);
  M.defineNative("call-consuming-continuation-attachment",
                 nativeCallConsuming, 2, 2);
  M.defineNative("current-continuation-attachments",
                 nativeCurrentAttachments, 0, 0);
}

} // namespace cmk
