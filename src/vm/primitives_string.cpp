//===- vm/primitives_string.cpp - String and char primitives ---*- C++ -*-===//

#include "vm/vm.h"

#include "runtime/printer.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace cmk;

namespace {

bool getString(VM &M, const char *Who, Value V, std::string &Out) {
  if (!V.isString()) {
    typeError(M, Who, "string", V);
    return false;
  }
  StringObj *S = asString(V);
  Out.assign(S->Data, S->Len);
  return true;
}

Value nativeStringLength(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isString())
    return typeError(M, "string-length", "string", Args[0]);
  return Value::fixnum(asString(Args[0])->Len);
}

Value nativeStringRef(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isString() || !Args[1].isFixnum())
    return typeError(M, "string-ref", "string and index", Args[0]);
  StringObj *S = asString(Args[0]);
  int64_t I = Args[1].asFixnum();
  if (I < 0 || I >= S->Len)
    return M.raiseError("string-ref: index out of range");
  return Value::character(static_cast<unsigned char>(S->Data[I]));
}

Value nativeSubstring(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isString() || !Args[1].isFixnum())
    return typeError(M, "substring", "string and indices", Args[0]);
  StringObj *S = asString(Args[0]);
  int64_t From = Args[1].asFixnum();
  int64_t To = NArgs > 2 && Args[2].isFixnum() ? Args[2].asFixnum() : S->Len;
  if (From < 0 || To > S->Len || From > To)
    return M.raiseError("substring: bad range");
  GCRoot Root(M.heap(), Args[0]);
  Value Out = M.heap().makeUninitString(static_cast<uint32_t>(To - From));
  std::memcpy(asString(Out)->Data, asString(Root.get())->Data + From,
              To - From);
  return Out;
}

Value nativeStringAppend(VM &M, Value *Args, uint32_t NArgs) {
  std::string Out;
  for (uint32_t I = 0; I < NArgs; ++I) {
    std::string S;
    if (!getString(M, "string-append", Args[I], S))
      return Value::undefined();
    Out += S;
  }
  return M.heap().makeString(Out);
}

template <int Lo, int Hi>
Value stringCompare(VM &M, const char *Who, Value *Args, uint32_t NArgs) {
  for (uint32_t I = 0; I + 1 < NArgs; ++I) {
    std::string A, B;
    if (!getString(M, Who, Args[I], A) || !getString(M, Who, Args[I + 1], B))
      return Value::undefined();
    int Cmp = A.compare(B);
    Cmp = Cmp < 0 ? -1 : (Cmp > 0 ? 1 : 0);
    if (Cmp < Lo || Cmp > Hi)
      return Value::False();
  }
  return Value::True();
}

Value nativeStringEq(VM &M, Value *A, uint32_t N) {
  return stringCompare<0, 0>(M, "string=?", A, N);
}
Value nativeStringLt(VM &M, Value *A, uint32_t N) {
  return stringCompare<-1, -1>(M, "string<?", A, N);
}

Value nativeMakeString(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isFixnum() || Args[0].asFixnum() < 0)
    return typeError(M, "make-string", "nonnegative fixnum", Args[0]);
  char Fill = NArgs > 1 && Args[1].isChar()
                  ? static_cast<char>(Args[1].asChar())
                  : ' ';
  std::string S(static_cast<size_t>(Args[0].asFixnum()), Fill);
  return M.heap().makeString(S);
}

Value nativeStringOfChars(VM &M, Value *Args, uint32_t NArgs) {
  std::string Out;
  for (uint32_t I = 0; I < NArgs; ++I) {
    if (!Args[I].isChar())
      return typeError(M, "string", "character", Args[I]);
    Out += static_cast<char>(Args[I].asChar());
  }
  return M.heap().makeString(Out);
}

Value nativeStringToList(VM &M, Value *Args, uint32_t) {
  std::string S;
  if (!getString(M, "string->list", Args[0], S))
    return Value::undefined();
  GCRoot Acc(M.heap(), Value::nil());
  for (size_t I = S.size(); I > 0; --I)
    Acc.set(M.heap().makePair(
        Value::character(static_cast<unsigned char>(S[I - 1])), Acc.get()));
  return Acc.get();
}

Value nativeListToString(VM &M, Value *Args, uint32_t) {
  std::string Out;
  for (Value P = Args[0]; P.isPair(); P = cdr(P)) {
    if (!car(P).isChar())
      return typeError(M, "list->string", "character", car(P));
    Out += static_cast<char>(car(P).asChar());
  }
  return M.heap().makeString(Out);
}

Value nativeStringUpcase(VM &M, Value *Args, uint32_t) {
  std::string S;
  if (!getString(M, "string-upcase", Args[0], S))
    return Value::undefined();
  for (char &C : S)
    C = static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
  return M.heap().makeString(S);
}

Value nativeStringDowncase(VM &M, Value *Args, uint32_t) {
  std::string S;
  if (!getString(M, "string-downcase", Args[0], S))
    return Value::undefined();
  for (char &C : S)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return M.heap().makeString(S);
}

Value nativeStringContains(VM &M, Value *Args, uint32_t) {
  std::string A, B;
  if (!getString(M, "string-contains?", Args[0], A) ||
      !getString(M, "string-contains?", Args[1], B))
    return Value::undefined();
  return Value::boolean(A.find(B) != std::string::npos);
}

Value nativeStringIndexOf(VM &M, Value *Args, uint32_t) {
  std::string A, B;
  if (!getString(M, "string-index-of", Args[0], A) ||
      !getString(M, "string-index-of", Args[1], B))
    return Value::undefined();
  size_t Pos = A.find(B);
  return Pos == std::string::npos ? Value::False()
                                  : Value::fixnum(static_cast<int64_t>(Pos));
}

Value nativeStringSplit(VM &M, Value *Args, uint32_t) {
  std::string S, Sep;
  if (!getString(M, "string-split", Args[0], S) ||
      !getString(M, "string-split", Args[1], Sep))
    return Value::undefined();
  RootedValues Parts(M.heap());
  if (Sep.empty())
    return typeError(M, "string-split", "non-empty separator", Args[1]);
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Next = S.find(Sep, Pos);
    if (Next == std::string::npos) {
      Parts.push(M.heap().makeString(S.substr(Pos)));
      break;
    }
    Parts.push(M.heap().makeString(S.substr(Pos, Next - Pos)));
    Pos = Next + Sep.size();
  }
  GCRoot Acc(M.heap(), Value::nil());
  for (size_t I = Parts.size(); I > 0; --I)
    Acc.set(M.heap().makePair(Parts[I - 1], Acc.get()));
  return Acc.get();
}

Value nativeStringJoin(VM &M, Value *Args, uint32_t) {
  std::string Sep;
  if (!getString(M, "string-join", Args[1], Sep))
    return Value::undefined();
  std::string Out;
  bool First = true;
  for (Value P = Args[0]; P.isPair(); P = cdr(P)) {
    std::string S;
    if (!getString(M, "string-join", car(P), S))
      return Value::undefined();
    if (!First)
      Out += Sep;
    First = false;
    Out += S;
  }
  return M.heap().makeString(Out);
}

Value nativeNumberToString(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isNumber())
    return typeError(M, "number->string", "number", Args[0]);
  return M.heap().makeString(writeToString(Args[0]));
}

Value nativeStringToNumber(VM &M, Value *Args, uint32_t) {
  std::string S;
  if (!getString(M, "string->number", Args[0], S))
    return Value::undefined();
  if (S.empty())
    return Value::False();
  char *End = nullptr;
  errno = 0;
  long long N = std::strtoll(S.c_str(), &End, 10);
  if (errno == 0 && End == S.c_str() + S.size() && fitsFixnum(N))
    return Value::fixnum(N);
  End = nullptr;
  errno = 0;
  double D = std::strtod(S.c_str(), &End);
  if (errno == 0 && End == S.c_str() + S.size())
    return M.heap().makeFlonum(D);
  return Value::False();
}

Value nativeCharToInteger(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isChar())
    return typeError(M, "char->integer", "character", Args[0]);
  return Value::fixnum(Args[0].asChar());
}

Value nativeIntegerToChar(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isFixnum() || Args[0].asFixnum() < 0 ||
      Args[0].asFixnum() > 0x10FFFF)
    return typeError(M, "integer->char", "character code", Args[0]);
  return Value::character(static_cast<uint32_t>(Args[0].asFixnum()));
}

template <int (*Pred)(int)>
Value charPred(VM &M, const char *Who, Value *Args) {
  if (!Args[0].isChar())
    return typeError(M, Who, "character", Args[0]);
  return Value::boolean(Pred(static_cast<int>(Args[0].asChar())) != 0);
}

Value nativeCharAlphabetic(VM &M, Value *Args, uint32_t) {
  return charPred<std::isalpha>(M, "char-alphabetic?", Args);
}
Value nativeCharNumeric(VM &M, Value *Args, uint32_t) {
  return charPred<std::isdigit>(M, "char-numeric?", Args);
}
Value nativeCharWhitespace(VM &M, Value *Args, uint32_t) {
  return charPred<std::isspace>(M, "char-whitespace?", Args);
}

Value nativeCharEq(VM &M, Value *Args, uint32_t NArgs) {
  for (uint32_t I = 0; I < NArgs; ++I)
    if (!Args[I].isChar())
      return typeError(M, "char=?", "character", Args[I]);
  for (uint32_t I = 0; I + 1 < NArgs; ++I)
    if (Args[I].asChar() != Args[I + 1].asChar())
      return Value::False();
  return Value::True();
}

Value nativeCharLt(VM &M, Value *Args, uint32_t NArgs) {
  for (uint32_t I = 0; I < NArgs; ++I)
    if (!Args[I].isChar())
      return typeError(M, "char<?", "character", Args[I]);
  for (uint32_t I = 0; I + 1 < NArgs; ++I)
    if (!(Args[I].asChar() < Args[I + 1].asChar()))
      return Value::False();
  return Value::True();
}

Value nativeFormat(VM &M, Value *Args, uint32_t NArgs) {
  // (format fmt arg ...): ~a display, ~s write, ~% newline, ~~ tilde.
  std::string Fmt;
  if (!getString(M, "format", Args[0], Fmt))
    return Value::undefined();
  std::string Out;
  uint32_t Arg = 1;
  for (size_t I = 0; I < Fmt.size(); ++I) {
    if (Fmt[I] != '~' || I + 1 == Fmt.size()) {
      Out += Fmt[I];
      continue;
    }
    char D = Fmt[++I];
    if (D == 'a' || D == 'A') {
      if (Arg >= NArgs)
        return M.raiseError("format: too few arguments");
      printValue(Out, Args[Arg++], /*Display=*/true);
    } else if (D == 's' || D == 'S') {
      if (Arg >= NArgs)
        return M.raiseError("format: too few arguments");
      printValue(Out, Args[Arg++], /*Display=*/false);
    } else if (D == '%' || D == 'n') {
      Out += '\n';
    } else {
      Out += D;
    }
  }
  return M.heap().makeString(Out);
}

} // namespace

void cmk::installStringPrimitives(VM &M) {
  M.defineNative("string-length", nativeStringLength, 1, 1);
  M.defineNative("string-ref", nativeStringRef, 2, 2);
  M.defineNative("substring", nativeSubstring, 2, 3);
  M.defineNative("string-append", nativeStringAppend, 0, -1);
  M.defineNative("string=?", nativeStringEq, 2, -1);
  M.defineNative("string<?", nativeStringLt, 2, -1);
  M.defineNative("make-string", nativeMakeString, 1, 2);
  M.defineNative("string", nativeStringOfChars, 0, -1);
  M.defineNative("string->list", nativeStringToList, 1, 1);
  M.defineNative("list->string", nativeListToString, 1, 1);
  M.defineNative("string-upcase", nativeStringUpcase, 1, 1);
  M.defineNative("string-downcase", nativeStringDowncase, 1, 1);
  M.defineNative("string-contains?", nativeStringContains, 2, 2);
  M.defineNative("string-index-of", nativeStringIndexOf, 2, 2);
  M.defineNative("string-split", nativeStringSplit, 2, 2);
  M.defineNative("string-join", nativeStringJoin, 2, 2);
  M.defineNative("number->string", nativeNumberToString, 1, 1);
  M.defineNative("string->number", nativeStringToNumber, 1, 1);
  M.defineNative("char->integer", nativeCharToInteger, 1, 1);
  M.defineNative("integer->char", nativeIntegerToChar, 1, 1);
  M.defineNative("char-alphabetic?", nativeCharAlphabetic, 1, 1);
  M.defineNative("char-numeric?", nativeCharNumeric, 1, 1);
  M.defineNative("char-whitespace?", nativeCharWhitespace, 1, 1);
  M.defineNative("char=?", nativeCharEq, 2, -1);
  M.defineNative("char<?", nativeCharLt, 2, -1);
  M.defineNative("format", nativeFormat, 1, -1);
}
