//===- vm/callcc.cpp - First-class continuation capture --------*- C++ -*-===//
///
/// \file
/// The raw call/cc primitive (paper section 5): capture reifies the
/// current continuation into an underflow-record chain and promotes every
/// one-shot record in the tail to a full continuation (section 6). The
/// winder-aware call/cc that user code sees is defined in the prelude on
/// top of this primitive.
///
//===----------------------------------------------------------------------===//

#include "vm/vm.h"

using namespace cmk;

namespace cmk {

void promoteOneShots(VM &M, Value K) {
  // Chain invariant: once a record is Full, its entire tail is Full, so
  // the walk is amortized constant. Promotion also clears explicit
  // one-shot markings: a promoted one-shot is a full continuation
  // (paper section 6).
  while (K.isCont() && (asCont(K)->shot() == ContShot::Opportunistic ||
                        asCont(K)->isExplicitOneShot())) {
    ++M.stats().OneShotPromotions;
    CMK_TRACE_EV(M.trace(), OneShotPromote);
    asCont(K)->setShot(ContShot::Full);
    asCont(K)->H.Aux &= ~uint16_t(0x300); // Clear one-shot + used bits.
    // A full record restores from its segment at an arbitrary later time;
    // the segment must never be eagerly recycled (sticky pin).
    if (asCont(K)->Seg.isKind(ObjKind::StackSeg))
      asStackSeg(asCont(K)->Seg)->H.Flags |= objflags::SegPinned;
    K = asCont(K)->Next;
  }
}

} // namespace cmk

namespace {

/// Deep-copies the record chain and its stack slices: the copy-on-capture
/// (Gambit/CHICKEN-like) strategy used for the ctak strategy comparison.
Value copyChainEagerly(VM &M, Value KV) {
  Heap &H = M.heap();
  GCRoot Orig(H, KV);
  RootedValues Copies(H);
  for (Value P = KV; P.isCont(); P = asCont(P)->Next) {
    ContObj *K = asCont(P);
    uint32_t Len = K->Hi - K->Lo;
    GCRoot PRoot(H, P);
    Value SegCopy = H.makeStackSeg(Len == 0 ? 1 : Len);
    K = asCont(PRoot.get());
    for (uint32_t I = 0; I < Len; ++I)
      asStackSeg(SegCopy)->Slots[I] = asStackSeg(K->Seg)->Slots[K->Lo + I];
    GCRoot SegRoot(H, SegCopy);
    Value NewKV = H.makeCont();
    ContObj *NewK = asCont(NewKV);
    K = asCont(PRoot.get());
    NewK->Seg = SegRoot.get();
    NewK->Lo = 0;
    NewK->Hi = Len;
    NewK->RetFp = K->RetFp - K->Lo;
    NewK->MarkHeight = K->MarkHeight;
    NewK->RetCode = K->RetCode;
    NewK->RetPc = K->RetPc;
    NewK->Marks = K->Marks;
    NewK->Winders = K->Winders;
    NewK->PromptTag = K->PromptTag;
    NewK->MarkStackCopy = K->MarkStackCopy;
    NewK->setShot(ContShot::Full);
    asStackSeg(NewK->Seg)->H.Flags |= objflags::SegPinned;
    // Rewrite the frame chain to slice-relative indices.
    if (Len > 0) {
      StackSegObj *S = asStackSeg(NewK->Seg);
      uint32_t F = NewK->RetFp;
      while (F > 0) {
        uint32_t Old = static_cast<uint32_t>(S->Slots[F + 0].asFixnum());
        S->Slots[F + 0] = Value::fixnum(Old - asCont(PRoot.get())->Lo);
        F = Old - asCont(PRoot.get())->Lo;
      }
    }
    Copies.push(NewKV);
  }
  // Link the copies.
  Value Next = Value::nil();
  for (size_t I = Copies.size(); I > 0; --I) {
    asCont(Copies[I - 1])->Next = Next;
    Next = Copies[I - 1];
  }
  return Copies.size() ? Copies[0] : Orig.get();
}

/// (#%call/cc f): captures the current continuation, promotes one-shots,
/// and tail-calls f with the continuation record as a procedure.
Value nativeRawCallCC(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isProcedure())
    return typeError(M, "#%call/cc", "procedure", Args[0]);
  GCRoot Proc(M.heap(), Args[0]);
  ++M.stats().ContinuationCaptures;
  CMK_TRACE_EV(M.trace(), Capture, 0);
  uint64_t ReifiedBefore = M.stats().Reifications;

  Value KV;
  if (M.NativeTailCall) {
    // The continuation of a tail call is the current frame's continuation;
    // the chain always ends in the run's halt record, so NextK is a valid
    // capture even at the stack bottom.
    M.reifyCurrentFrame();
    KV = M.Regs.NextK;
  } else {
    // Reify opportunistically and promote the whole chain below: creating
    // a Full record directly would break the "Full implies tail Full"
    // invariant that makes promotion amortized constant.
    KV = M.reifyAtSp(ContShot::Opportunistic);
  }
  M.stats().ReifyForCapture += M.stats().Reifications - ReifiedBefore;
  promoteOneShots(M, KV);

  if (M.config().MarkStackMode) {
    // Old-Racket comparator: capturing copies the whole mark stack.
    GCRoot KRoot(M.heap(), KV);
    uint32_t N = static_cast<uint32_t>(M.MarkStack.size());
    Value Copy = M.heap().makeVector(4 * N, Value::fixnum(0));
    for (uint32_t I = 0; I < N; ++I) {
      VectorObj *V = asVector(Copy);
      V->Elems[4 * I + 0] = M.MarkStack[I].Seg;
      V->Elems[4 * I + 1] = Value::fixnum(M.MarkStack[I].Fp);
      V->Elems[4 * I + 2] = M.MarkStack[I].Key;
      V->Elems[4 * I + 3] = M.MarkStack[I].Val;
    }
    KV = KRoot.get();
    asCont(KV)->MarkStackCopy = Copy;
  }

  if (M.config().CopyOnCapture)
    KV = copyChainEagerly(M, KV);

  Value CallArgs[1] = {KV};
  M.scheduleTailCall(Proc.get(), CallArgs, 1);
  return Value::voidValue();
}

/// (#%call/1cc f): captures a one-shot continuation (paper section 6 /
/// Bruggeman et al.). The capture does not promote the record chain;
/// using the continuation more than once is an error. call/cc promotes
/// captured one-shots to full continuations, after which multiple returns
/// through them are legal again.
Value nativeCallOneShot(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isProcedure())
    return typeError(M, "#%call/1cc", "procedure", Args[0]);
  GCRoot Proc(M.heap(), Args[0]);
  ++M.stats().ContinuationCaptures;
  CMK_TRACE_EV(M.trace(), Capture, 1);
  uint64_t ReifiedBefore = M.stats().Reifications;

  Value KV;
  if (M.NativeTailCall) {
    M.reifyCurrentFrame();
    KV = M.Regs.NextK;
  } else {
    KV = M.reifyAtSp(ContShot::Opportunistic);
  }
  M.stats().ReifyForCapture += M.stats().Reifications - ReifiedBefore;
  // Do not demote a record that a previous call/cc already promoted to a
  // full continuation (it may legitimately be used many times).
  if (asCont(KV)->shot() == ContShot::Opportunistic)
    asCont(KV)->setExplicitOneShot();

  Value CallArgs[1] = {KV};
  M.scheduleTailCall(Proc.get(), CallArgs, 1);
  return Value::voidValue();
}

Value nativeContinuationP(VM &M, Value *Args, uint32_t NArgs) {
  return Value::boolean(Args[0].isCont() || Args[0].isCompositeCont());
}

Value nativeOneShotP(VM &M, Value *Args, uint32_t NArgs) {
  return Value::boolean(Args[0].isCont() &&
                        asCont(Args[0])->isExplicitOneShot());
}

Value nativeContinuationMarksOf(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isCont())
    return typeError(M, "#%continuation-marks-list", "continuation", Args[0]);
  return asCont(Args[0])->Marks;
}

Value nativeContinuationWinders(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isCont())
    return typeError(M, "#%continuation-winders", "continuation", Args[0]);
  return asCont(Args[0])->Winders;
}

} // namespace

void cmk::installControlPrimitives(VM &M) {
  M.defineNative("#%call/cc", nativeRawCallCC, 1, 1);
  M.defineNative("#%call/1cc", nativeCallOneShot, 1, 1);
  M.defineNative("continuation?", nativeContinuationP, 1, 1);
  M.defineNative("one-shot-continuation?", nativeOneShotP, 1, 1);
  M.defineNative("#%continuation-marks-list", nativeContinuationMarksOf, 1, 1);
  M.defineNative("#%continuation-winders", nativeContinuationWinders, 1, 1);
}
