//===- vm/dynwind.cpp - dynamic-wind support natives -----------*- C++ -*-===//
///
/// \file
/// Native support for dynamic-wind, which is itself implemented in the
/// prelude (as in Chez Scheme). A winder record carries the marks of the
/// dynamic-wind call's continuation (paper footnote 4): those marks are
/// restored while running one of the winder thunks, via #%call-with-marks.
///
//===----------------------------------------------------------------------===//

#include "vm/vm.h"

using namespace cmk;

namespace {

Value nativePushWinder(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isProcedure() || !Args[1].isProcedure())
    return typeError(M, "#%push-winder", "procedure", Args[0]);
  // Footnote 4: record the marks of the dynamic-wind call's continuation.
  CMK_TRACE_EV(M.trace(), WindEnter);
  M.Regs.Winders =
      M.heap().makeWinder(Args[0], Args[1], M.Regs.Marks, M.Regs.Winders);
  return Value::voidValue();
}

Value nativePopWinder(VM &M, Value *Args, uint32_t NArgs) {
  if (!M.Regs.Winders.isKind(ObjKind::Winder))
    return M.raiseError("#%pop-winder: no winders");
  CMK_TRACE_EV(M.trace(), WindExit);
  M.Regs.Winders = asWinder(M.Regs.Winders)->Next;
  return Value::voidValue();
}

Value nativeWinders(VM &M, Value *Args, uint32_t NArgs) {
  return M.Regs.Winders;
}

Value nativeSetWinders(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isNil() && !Args[0].isKind(ObjKind::Winder))
    return typeError(M, "#%set-winders!", "winder chain", Args[0]);
  M.Regs.Winders = Args[0];
  return Value::voidValue();
}

Value nativeMakeWinder(VM &M, Value *Args, uint32_t NArgs) {
  // (#%make-winder before after marks next): a fresh winder record that is
  // NOT installed in the winder register. The composable-continuation
  // wrapper builds its rebased chain functionally with this, because a
  // #%push-winder inside a helper would not survive the helper's return:
  // underflowing through a reified record restores the caller's winder
  // snapshot (and heap-frame mode reifies at every call).
  if (!Args[0].isProcedure() || !Args[1].isProcedure())
    return typeError(M, "#%make-winder", "procedure", Args[0]);
  if (!Args[3].isNil() && !Args[3].isKind(ObjKind::Winder))
    return typeError(M, "#%make-winder", "winder chain", Args[3]);
  return M.heap().makeWinder(Args[0], Args[1], Args[2], Args[3]);
}

Value winderField(VM &M, Value W, int Field) {
  if (!W.isKind(ObjKind::Winder)) {
    typeError(M, "winder accessor", "winder", W);
    return Value::undefined();
  }
  WinderObj *Obj = asWinder(W);
  switch (Field) {
  case 0:
    return Obj->Before;
  case 1:
    return Obj->After;
  case 2:
    return Obj->Marks;
  default:
    return Obj->Next;
  }
}

Value nativeWinderBefore(VM &M, Value *Args, uint32_t NArgs) {
  return winderField(M, Args[0], 0);
}
Value nativeWinderAfter(VM &M, Value *Args, uint32_t NArgs) {
  return winderField(M, Args[0], 1);
}
Value nativeWinderMarks(VM &M, Value *Args, uint32_t NArgs) {
  return winderField(M, Args[0], 2);
}
Value nativeWinderNext(VM &M, Value *Args, uint32_t NArgs) {
  return winderField(M, Args[0], 3);
}

/// (#%call-with-marks marks thunk): reifies the continuation of this call,
/// installs \p marks as the marks register, and tail-calls the thunk; the
/// underflow on return restores the previous marks. Used to run winder
/// thunks with the marks of the dynamic-wind call (footnote 4).
Value nativeCallWithMarks(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[1].isProcedure())
    return typeError(M, "#%call-with-marks", "procedure", Args[1]);
  GCRoot Marks(M.heap(), Args[0]), Thunk(M.heap(), Args[1]);
  if (M.NativeTailCall)
    M.reifyCurrentFrame();
  else
    M.reifyAtSp(ContShot::Opportunistic);
  M.Regs.Marks = Marks.get();
  M.scheduleTailCall(Thunk.get(), nullptr, 0);
  return Value::voidValue();
}

} // namespace

void cmk::installWinderPrimitives(VM &M) {
  M.defineNative("#%push-winder", nativePushWinder, 2, 2);
  M.defineNative("#%pop-winder", nativePopWinder, 0, 0);
  M.defineNative("#%winders", nativeWinders, 0, 0);
  M.defineNative("#%set-winders!", nativeSetWinders, 1, 1);
  M.defineNative("#%make-winder", nativeMakeWinder, 4, 4);
  M.defineNative("#%winder-before", nativeWinderBefore, 1, 1);
  M.defineNative("#%winder-after", nativeWinderAfter, 1, 1);
  M.defineNative("#%winder-marks", nativeWinderMarks, 1, 1);
  M.defineNative("#%winder-next", nativeWinderNext, 1, 1);
  M.defineNative("#%call-with-marks", nativeCallWithMarks, 2, 2);
}
