//===- vm/fibers.cpp - Cooperative fibers over one-shot continuations ----===//
///
/// \file
/// FiberScheduler implementation and the #%fiber-* natives. See
/// vm/fibers.h for the design overview and DESIGN.md section 16 for the
/// full story. Everything here runs on the owning VM's thread.
///
//===----------------------------------------------------------------------===//

#include "vm/fibers.h"

#include "runtime/numbers.h"
#include "support/timing.h"
#include "vm/vm.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace cmk;

namespace {

/// Min-heap comparator (std::push_heap builds a max-heap, so invert).
struct TimerCmp {
  template <typename T> bool operator()(const T &A, const T &B) const {
    return A.Due > B.Due;
  }
};

} // namespace

uint64_t FiberScheduler::nextTimerDelayNs() const {
  // The top entry may be stale (its fiber was unparked); report it anyway:
  // the host wakes, the pump drops it, and the wait re-bounds. Cheaper
  // than maintaining eager deletion for a rare early wake.
  if (Timers.empty())
    return 0;
  uint64_t Now = nowNanos();
  uint64_t Due = Timers.front().Due;
  return Due > Now ? Due - Now : 1;
}

void FiberScheduler::addTimer(Value FV, uint64_t Due) {
  Timers.push_back(TimerEntry{Due, FV});
  std::push_heap(Timers.begin(), Timers.end(), TimerCmp());
}

Value FiberScheduler::makeHaltCont(VM &M) {
  Value KV = M.heap().makeCont();
  ContObj *K = asCont(KV);
  // Same shape as the base-frame halt record (VM::installBaseFrame): an
  // empty nil-segment slice whose return code is the lone Halt
  // instruction, with no marks, winders, or next record — the isolation
  // boundary every fresh fiber boots behind.
  K->Seg = Value::nil();
  K->Lo = K->Hi = 0;
  K->RetFp = 0;
  K->MarkHeight = 0;
  K->RetCode = M.HaltCode;
  K->RetPc = Value::fixnum(0);
  K->setShot(ContShot::Full);
  return KV;
}

Value FiberScheduler::captureHere(VM &M) {
  // The call/1cc capture split (vm/callcc.cpp): in tail position the
  // current frame is dead, so the continuation is just NextK; otherwise
  // split at sp so the park call's frame is part of the capture.
  Value KV;
  if (M.NativeTailCall) {
    M.reifyCurrentFrame();
    KV = M.Regs.NextK;
  } else {
    KV = M.reifyAtSp(ContShot::Opportunistic);
  }
  // Scheduler resumes are strictly one-shot; marking the record makes a
  // stray second resume fail with the standard one-shot error.
  if (asCont(KV)->shot() == ContShot::Opportunistic)
    asCont(KV)->setExplicitOneShot();
  return KV;
}

void FiberScheduler::armBudget(VM &M, FiberObj *F) {
  SliceStartNs = nowNanos();
  uint64_t DeadNs = 0;
  if (F->BudgetNs)
    DeadNs = SliceStartNs + F->BudgetNs;
  if (F->JobDeadlineNs && (DeadNs == 0 || F->JobDeadlineNs < DeadNs))
    DeadNs = F->JobDeadlineNs;
  if (DeadNs) {
    M.Deadline = std::chrono::steady_clock::time_point(
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::nanoseconds(DeadNs)));
    M.DeadlineArmed = true;
    if (DeadNs <= SliceStartNs)
      M.FuelLeft = 0; // Already expired: trip at the first safe point.
  } else if (CoopPool) {
    // Governed fibers switched out; an unbudgeted fiber runs deadline-free
    // (pool mode zeroes the engine-level timeout in favour of these).
    M.DeadlineArmed = false;
  }
}

void FiberScheduler::noteSwitchOut(FiberObj *F) {
  uint64_t Now = nowNanos();
  uint64_t Ran = Now > SliceStartNs ? Now - SliceStartNs : 0;
  F->RunNs += Ran;
  if (F->BudgetNs) {
    // Keep an exhausted budget nonzero so the next switch-in still arms an
    // (already past) deadline instead of reading 0 as "unlimited".
    F->BudgetNs = F->BudgetNs > Ran ? F->BudgetNs - Ran : 1;
  }
  SliceStartNs = Now;
}

Value FiberScheduler::currentFiber(VM &M) {
  if (Current.isFiber())
    return Current;
  // Adopt the toplevel context as a fiber on first suspension so the root
  // can park/join like any spawned fiber. No budget: engine-level limits
  // already govern this run.
  Value FV = M.heap().makeFiber(Value::undefined(), Value::nil(), NextId++);
  asFiber(FV)->setState(FiberState::Running);
  Current = FV;
  return FV;
}

Value FiberScheduler::spawn(VM &M, Value Thunk, Value ArgsList) {
  if (M.Cfg.MarkStackMode)
    return M.raiseError("spawn: fibers are not supported in mark-stack mode "
                        "(the eager mark stack is per-VM, not per-fiber)");
  GCRoot T(M.heap(), Thunk), A(M.heap(), ArgsList);
  // Sub-fibers of a pool job inherit the job's wall-clock deadline and a
  // snapshot of its remaining budget, so a runaway sub-fiber cannot
  // outlive its job's governance.
  uint64_t Budget = 0, DeadNs = 0;
  if (Current.isFiber()) {
    Budget = asFiber(Current)->BudgetNs;
    DeadNs = asFiber(Current)->JobDeadlineNs;
  }
  Value FV = M.heap().makeFiber(T.get(), A.get(), NextId++);
  FiberObj *F = asFiber(FV);
  F->BudgetNs = Budget;
  F->JobDeadlineNs = DeadNs;
  ++Live;
  ++M.Stats.FiberSpawns;
  RunQueue.push_back(FV);
  return FV;
}

Value FiberScheduler::spawnJob(VM &M, Value Thunk, Value ArgsList,
                               uint64_t BudgetNs, uint64_t DeadlineNs,
                               uint64_t DelayNs) {
  GCRoot T(M.heap(), Thunk), A(M.heap(), ArgsList);
  Value FV = M.heap().makeFiber(T.get(), A.get(), NextId++);
  FiberObj *F = asFiber(FV);
  F->BudgetNs = BudgetNs;
  F->JobDeadlineNs = DeadlineNs;
  F->setJob();
  ++Live;
  ++M.Stats.FiberSpawns;
  if (DelayNs) {
    // Retry backoff: stays Fresh on a timer; pumped runnable when due.
    uint64_t Due = nowNanos() + DelayNs;
    F->DueNs = Due;
    addTimer(FV, Due);
  } else {
    RunQueue.push_back(FV);
  }
  return FV;
}

void FiberScheduler::pumpTimers(VM &M, uint64_t Now) {
  if (Timers.empty())
    return;
  // Interned up front: popping an entry unroots its fiber, so no
  // allocation may happen between pop and requeue.
  Value TimeoutSym = M.heap().intern("timeout");
  while (!Timers.empty()) {
    const TimerEntry &Top = Timers.front();
    FiberObj *F = asFiber(Top.F);
    bool Stale = F->DueNs != Top.Due || (F->state() != FiberState::Parked &&
                                         F->state() != FiberState::Fresh);
    if (!Stale && Top.Due > Now)
      break;
    Value FV = Top.F;
    std::pop_heap(Timers.begin(), Timers.end(), TimerCmp());
    Timers.pop_back();
    if (Stale)
      continue;
    F = asFiber(FV);
    F->DueNs = 0;
    if (F->state() == FiberState::Parked) {
      F->setState(FiberState::Runnable);
      F->ResumeVal = TimeoutSym;
    }
    RunQueue.push_back(FV);
  }
}

void FiberScheduler::idleWait(VM &M) {
  // Standalone mode, everything blocked, earliest timer not yet due:
  // sleep in interruptible chunks. A pending signal or a passed VM
  // deadline forces the earliest sleeper due immediately with zero fuel,
  // so the resumed fiber's first safe point delivers the trip.
  using namespace std::chrono;
  for (;;) {
    uint64_t Now = nowNanos();
    if (Timers.empty() || Timers.front().Due <= Now)
      return;
    bool Signalled =
        M.AsyncSignals.load(std::memory_order_relaxed) != 0 ||
        (M.DeadlineArmed && steady_clock::now() >= M.Deadline);
    if (Signalled) {
      TimerEntry &Top = Timers.front();
      if (asFiber(Top.F)->DueNs == Top.Due)
        asFiber(Top.F)->DueNs = Now;
      Top.Due = Now; // Decrease-key at the root keeps the heap valid.
      M.FuelLeft = 0;
      return;
    }
    uint64_t WaitNs = Timers.front().Due - Now;
    if (WaitNs > 10'000'000)
      WaitNs = 10'000'000; // <=10ms chunks keep interrupt latency low.
    if (WaitHook)
      WaitHook(WaitNs);
    else
      std::this_thread::sleep_for(nanoseconds(WaitNs));
  }
}

void FiberScheduler::kickEarliestTimer() {
  uint64_t Now = nowNanos();
  while (!Timers.empty()) {
    TimerEntry &Top = Timers.front();
    FiberObj *F = asFiber(Top.F);
    bool Stale = F->DueNs != Top.Due || (F->state() != FiberState::Parked &&
                                         F->state() != FiberState::Fresh);
    if (Stale) {
      std::pop_heap(Timers.begin(), Timers.end(), TimerCmp());
      Timers.pop_back();
      continue;
    }
    F->DueNs = Now;
    Top.Due = Now;
    return;
  }
}

void FiberScheduler::switchTo(VM &M, Value FV) {
  GCRoot FRoot(M.heap(), FV);
  Current = FV;
  FiberObj *F = asFiber(FV);
  if (F->state() == FiberState::Fresh) {
    F->setState(FiberState::Running);
    armBudget(M, F);
    // Boot on an empty continuation: jump to a fresh halt record (empty
    // marks/winders — the isolation boundary), then tail-call the
    // prelude's #%fiber-boot, which runs the thunk under a catch-all and
    // reports the outcome through #%fiber-finish.
    Value HaltK = makeHaltCont(M);
    M.jumpToContinuation(HaltK);
    // Mirror installBaseFrame: the bottom of the chain must be a halt
    // *record*, not nil — the boot frame is built reified (sentinel
    // header), and a reified frame's NextK must be a record (AttachSet
    // reads its marks unconditionally).
    M.Regs.NextK = makeHaltCont(M);
    Value Boot = M.getGlobal("#%fiber-boot");
    if (!Boot.isClosure()) {
      M.raiseError("#%fiber-boot is not defined (prelude not loaded)");
      return;
    }
    Value CallArgs[1] = {FRoot.get()};
    M.scheduleTailCall(Boot, CallArgs, 1);
    return;
  }
  // Parked, now resumed: apply the saved one-shot capture. The capture
  // restores the fiber's own marks/winders registers wholesale.
  F->setState(FiberState::Running);
  Value K = F->Cont;
  Value V = F->ResumeVal;
  F->Cont = Value::undefined();
  F->ResumeVal = Value::voidValue();
  armBudget(M, F);
  M.applyContinuation(K, V);
}

void FiberScheduler::endSlice(VM &M, Value Status) {
  Current = Value::undefined();
  GCRoot SRoot(M.heap(), Status);
  Value HaltK = makeHaltCont(M);
  // Applying the halt record makes VM::run() return Status: the host
  // worker regains its thread with every parked fiber intact on the heap.
  M.applyContinuation(HaltK, SRoot.get());
}

bool FiberScheduler::dispatchNext(VM &M) {
  for (;;) {
    pumpTimers(M, nowNanos());
    if (!RunQueue.empty()) {
      Value FV = RunQueue.front();
      RunQueue.pop_front();
      FiberState S = asFiber(FV)->state();
      if (S != FiberState::Runnable && S != FiberState::Fresh)
        continue; // Stale queue entry; drop it.
      switchTo(M, FV);
      return true;
    }
    if (CoopPool) {
      endSlice(M, M.heap().intern("idle"));
      return true;
    }
    if (!Timers.empty()) {
      idleWait(M);
      continue;
    }
    return false; // Standalone deadlock: nothing runnable, nothing timed.
  }
}

void FiberScheduler::yieldCurrent(VM &M) {
  pumpTimers(M, nowNanos());
  if (RunQueue.empty())
    return; // Alone: yield is a no-op, no capture taken.
  Value FV = currentFiber(M);
  GCRoot FRoot(M.heap(), FV);
  Value KV = captureHere(M);
  FiberObj *F = asFiber(FRoot.get());
  F->Cont = KV;
  F->ResumeVal = Value::voidValue();
  F->setState(FiberState::Runnable);
  RunQueue.push_back(FRoot.get());
  ++M.Stats.FiberParks;
  noteSwitchOut(F);
  Current = Value::undefined();
  dispatchNext(M); // Cannot deadlock: the queue was nonempty.
}

void FiberScheduler::parkCurrent(VM &M, uint64_t DueNs) {
  if (M.Cfg.MarkStackMode) {
    M.raiseError("fiber park: fibers are not supported in mark-stack mode");
    return;
  }
  Value FV = currentFiber(M);
  GCRoot FRoot(M.heap(), FV);
  Value KV = captureHere(M);
  FiberObj *F = asFiber(FRoot.get());
  F->Cont = KV;
  F->ResumeVal = Value::voidValue();
  F->setState(FiberState::Parked);
  // A pool job's untimed or long wait is capped at its wall-clock
  // deadline, so expiry is noticed even while parked (the woken fiber's
  // first safe point then delivers the timeout trip).
  uint64_t Due = DueNs;
  if (F->JobDeadlineNs && (Due == 0 || F->JobDeadlineNs < Due))
    Due = F->JobDeadlineNs;
  F->DueNs = Due;
  if (Due)
    addTimer(FRoot.get(), Due);
  ++M.Stats.FiberParks;
  noteSwitchOut(F);
  Current = Value::undefined();
  if (!dispatchNext(M)) {
    // Deadlock: every fiber is parked with no timer. Revert the park and
    // raise in the would-be parker's context, where the error is
    // catchable and the machine state is consistent.
    F = asFiber(FRoot.get());
    F->setState(FiberState::Running);
    F->Cont = Value::undefined();
    F->DueNs = 0;
    Current = FRoot.get();
    M.raiseError("fiber deadlock: every fiber is parked and no timer is "
                 "pending");
  }
}

bool FiberScheduler::unpark(VM &M, Value FV, Value ResumeV) {
  (void)M;
  FiberObj *F = asFiber(FV);
  if (F->state() != FiberState::Parked)
    return false; // Stale waitlist entry or double unpark: harmless.
  F->DueNs = 0; // Invalidates any pending timer entry (lazy deletion).
  F->ResumeVal = ResumeV;
  F->setState(FiberState::Runnable);
  RunQueue.push_back(FV);
  return true;
}

void FiberScheduler::joinPark(VM &M, Value Target) {
  FiberObj *T = asFiber(Target);
  if (T->state() == FiberState::Done)
    return; // Join completes immediately; the caller re-checks state.
  GCRoot TR(M.heap(), Target);
  Value Me = currentFiber(M);
  GCRoot MeR(M.heap(), Me);
  Value Cell = M.heap().makePair(MeR.get(), asFiber(TR.get())->Joiners);
  asFiber(TR.get())->Joiners = Cell;
  parkCurrent(M, 0);
}

void FiberScheduler::wakeJoiners(VM &M, FiberObj *F) {
  Value J = F->Joiners;
  F->Joiners = Value::nil();
  for (; J.isPair(); J = cdr(J)) {
    Value W = car(J);
    if (W.isFiber())
      unpark(M, W, Value::voidValue());
  }
}

void FiberScheduler::finishCurrent(VM &M, Value FV, bool Ok, Value Result,
                                   Value KindSym) {
  if (!Current.isFiber() || asFiber(Current) != asFiber(FV)) {
    M.raiseError("#%fiber-finish: fiber is not current");
    return;
  }
  GCRoot FRoot(M.heap(), FV);
  FiberObj *F = asFiber(FV);
  noteSwitchOut(F);
  F->Result = Result;
  F->ErrKindSym = KindSym;
  if (!Ok)
    F->setErred();
  F->setState(FiberState::Done);
  F->Cont = Value::undefined();
  F->Thunk = Value::undefined();
  F->ArgsList = Value::nil();
  if (Live)
    --Live;
  wakeJoiners(M, F);
  Current = Value::undefined();
  if (CoopPool && F->isJob()) {
    // Retire the slice so the host collects the finished job promptly
    // (latency) and can admit a queued one into the freed fiber slot.
    DoneJobs.push_back(FRoot.get());
    endSlice(M, M.heap().intern("retire"));
    return;
  }
  if (!dispatchNext(M)) {
    // Nothing left to run and no way to wake anything: if fibers are
    // still parked this whole program can never progress — a real
    // deadlock, reported at the engine level.
    endSlice(M, Value::voidValue());
  }
}

void FiberScheduler::failCurrent(VM &M, const std::string &Msg,
                                 Value KindSym) {
  if (!Current.isFiber())
    return;
  GCRoot KRoot(M.heap(), KindSym);
  GCRoot FRoot(M.heap(), Current);
  Value MsgV = M.heap().makeString(Msg);
  FiberObj *F = asFiber(FRoot.get());
  F->Result = MsgV;
  F->ErrKindSym = KRoot.get();
  F->setErred();
  F->setState(FiberState::Done);
  F->Cont = Value::undefined();
  F->Thunk = Value::undefined();
  F->ArgsList = Value::nil();
  if (Live)
    --Live;
  wakeJoiners(M, F);
  if (F->isJob())
    DoneJobs.push_back(FRoot.get());
  Current = Value::undefined();
}

Value FiberScheduler::enterSlice(VM &M) {
  SliceStartNs = nowNanos();
  pumpTimers(M, nowNanos());
  if (RunQueue.empty())
    return M.heap().intern("idle"); // Plain return: the slice closure
                                    // just hands it back to the host.
  dispatchNext(M); // Switches in (sets NativeJumped); cannot deadlock.
  return Value::voidValue();
}

std::vector<Value> FiberScheduler::takeDoneJobs() {
  std::vector<Value> Out;
  Out.swap(DoneJobs);
  return Out;
}

void FiberScheduler::noteRunBoundary(VM &M) {
  SliceStartNs = nowNanos();
  if (Current.isFiber() && asFiber(Current)->state() == FiberState::Running) {
    // A completed run left its adopted-root fiber switched in (toplevel
    // returned through the base halt, not through #%fiber-finish).
    // Detach it: joiners wake into the run queue and get their turn the
    // next time this engine schedules.
    FiberObj *F = asFiber(Current);
    F->setState(FiberState::Done);
    F->Result = Value::voidValue();
    wakeJoiners(M, F);
    if (F->isJob()) {
      DoneJobs.push_back(Current);
      if (Live)
        --Live;
    }
  }
  Current = Value::undefined();
}

void FiberScheduler::traceRoots(Heap &H) {
  for (Value V : RunQueue)
    H.traceValue(V);
  for (TimerEntry &T : Timers)
    H.traceValue(T.F);
  for (Value V : DoneJobs)
    H.traceValue(V);
  H.traceValue(Current);
}

// -----------------------------------------------------------------------------
// Natives.
// -----------------------------------------------------------------------------

namespace {

Value nativeFiberP(VM &, Value *Args, uint32_t) {
  return Args[0].isFiber() ? Value::True() : Value::False();
}

Value nativeFiberSpawn(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isClosure() && !Args[0].isNative())
    return typeError(M, "spawn", "procedure", Args[0]);
  return M.Fibers.spawn(M, Args[0], NArgs > 1 ? Args[1] : Value::nil());
}

Value nativeFiberYield(VM &M, Value *, uint32_t) {
  M.Fibers.yieldCurrent(M);
  return Value::voidValue();
}

Value nativeFiberPark(VM &M, Value *, uint32_t) {
  M.Fibers.parkCurrent(M, 0);
  return Value::voidValue();
}

/// (#%fiber-park-timed! ms): park until unparked or ms elapse; the park
/// evaluates to the unpark value, or the symbol `timeout` on expiry.
Value nativeFiberParkTimed(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isNumber())
    return typeError(M, "#%fiber-park-timed!", "number", Args[0]);
  double Ms = toDouble(Args[0]);
  if (Ms != Ms || Ms < 0) // NaN sleeps not at all, like 0.
    Ms = 0;
  if (Ms > 60000)
    Ms = 60000;
  uint64_t Due = nowNanos() + static_cast<uint64_t>(Ms * 1e6);
  M.Fibers.parkCurrent(M, Due);
  return Value::voidValue();
}

Value nativeFiberUnpark(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isFiber())
    return typeError(M, "#%fiber-unpark!", "fiber", Args[0]);
  bool Woke = M.Fibers.unpark(M, Args[0],
                              NArgs > 1 ? Args[1] : Value::voidValue());
  return Woke ? Value::True() : Value::False();
}

Value nativeFiberJoinPark(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isFiber())
    return typeError(M, "fiber-join", "fiber", Args[0]);
  M.Fibers.joinPark(M, Args[0]);
  return Value::voidValue();
}

Value nativeFiberFinish(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isFiber())
    return typeError(M, "#%fiber-finish", "fiber", Args[0]);
  M.Fibers.finishCurrent(M, Args[0], !Args[1].isFalse(), Args[2], Args[3]);
  return Value::voidValue();
}

Value nativeFiberSchedule(VM &M, Value *, uint32_t) {
  return M.Fibers.enterSlice(M);
}

Value nativeCurrentFiber(VM &M, Value *, uint32_t) {
  return M.Fibers.currentFiber(M);
}

Value nativeFiberDoneP(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isFiber())
    return typeError(M, "#%fiber-done?", "fiber", Args[0]);
  return asFiber(Args[0])->state() == FiberState::Done ? Value::True()
                                                       : Value::False();
}

Value nativeFiberErrorP(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isFiber())
    return typeError(M, "#%fiber-error?", "fiber", Args[0]);
  return asFiber(Args[0])->erred() ? Value::True() : Value::False();
}

Value nativeFiberResult(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isFiber())
    return typeError(M, "#%fiber-result", "fiber", Args[0]);
  return asFiber(Args[0])->Result;
}

Value nativeFiberErrorKind(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isFiber())
    return typeError(M, "#%fiber-error-kind", "fiber", Args[0]);
  return asFiber(Args[0])->ErrKindSym;
}

Value nativeFiberThunk(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isFiber())
    return typeError(M, "#%fiber-thunk", "fiber", Args[0]);
  return asFiber(Args[0])->Thunk;
}

Value nativeFiberArgs(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isFiber())
    return typeError(M, "#%fiber-args", "fiber", Args[0]);
  return asFiber(Args[0])->ArgsList;
}

Value nativeFiberId(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isFiber())
    return typeError(M, "#%fiber-id", "fiber", Args[0]);
  return Value::fixnum(static_cast<int64_t>(asFiber(Args[0])->Id));
}

/// (#%fiber-run-ns f): accumulated on-CPU nanoseconds — parked time is
/// excluded by construction (tests/test_fibers.cpp pins this down).
Value nativeFiberRunNs(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isFiber())
    return typeError(M, "#%fiber-run-ns", "fiber", Args[0]);
  return Value::fixnum(static_cast<int64_t>(asFiber(Args[0])->RunNs));
}

Value nativeFiberState(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isFiber())
    return typeError(M, "#%fiber-state", "fiber", Args[0]);
  const char *Name = "fresh";
  switch (asFiber(Args[0])->state()) {
  case FiberState::Fresh:
    break;
  case FiberState::Runnable:
    Name = "runnable";
    break;
  case FiberState::Running:
    Name = "running";
    break;
  case FiberState::Parked:
    Name = "parked";
    break;
  case FiberState::Done:
    Name = "done";
    break;
  }
  return M.heap().intern(Name);
}

} // namespace

void cmk::installFiberPrimitives(VM &M) {
  M.defineNative("fiber?", nativeFiberP, 1, 1);
  M.defineNative("#%fiber-spawn", nativeFiberSpawn, 1, 2);
  M.defineNative("#%fiber-yield", nativeFiberYield, 0, 0);
  M.defineNative("#%fiber-park!", nativeFiberPark, 0, 0);
  M.defineNative("#%fiber-park-timed!", nativeFiberParkTimed, 1, 1);
  M.defineNative("#%fiber-unpark!", nativeFiberUnpark, 1, 2);
  M.defineNative("#%fiber-join-park!", nativeFiberJoinPark, 1, 1);
  M.defineNative("#%fiber-finish", nativeFiberFinish, 4, 4);
  M.defineNative("#%fiber-schedule!", nativeFiberSchedule, 0, 0);
  M.defineNative("#%current-fiber", nativeCurrentFiber, 0, 0);
  M.defineNative("#%fiber-done?", nativeFiberDoneP, 1, 1);
  M.defineNative("#%fiber-error?", nativeFiberErrorP, 1, 1);
  M.defineNative("#%fiber-result", nativeFiberResult, 1, 1);
  M.defineNative("#%fiber-error-kind", nativeFiberErrorKind, 1, 1);
  M.defineNative("#%fiber-thunk", nativeFiberThunk, 1, 1);
  M.defineNative("#%fiber-args", nativeFiberArgs, 1, 1);
  M.defineNative("#%fiber-id", nativeFiberId, 1, 1);
  M.defineNative("#%fiber-run-ns", nativeFiberRunNs, 1, 1);
  M.defineNative("#%fiber-state", nativeFiberState, 1, 1);
}
