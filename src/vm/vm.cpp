//===- vm/vm.cpp - Bytecode interpreter ------------------------*- C++ -*-===//
///
/// \file
/// The interpreter loop and the call/return/underflow protocol. The
/// attachment opcodes implement paper section 7's compiled strategies; the
/// generic strategies live in vm/attachments.cpp.
///
//===----------------------------------------------------------------------===//

#include "vm/vm.h"

#include "compiler/bytecode.h"
#include "marks/marks.h"
#include "runtime/equal.h"
#include "runtime/hashtable.h"
#include "runtime/numbers.h"
#include "runtime/printer.h"
#include "support/metrics.h"

#include <cstring>
#include <limits>

using namespace cmk;

// Defined in marks/mark_frame.cpp: reads a parameter's current binding.
namespace cmk {
Value parameterLookup(VM &M, Value Param);
// Defined in control/prompts.cpp: applies a composable continuation.
void applyCompositeCont(VM &M, Value K, Value Arg, bool TailMode);
}

VM::VM(const VMConfig &Config) : Cfg(Config) {
  WK.init(H);
  H.attachVMStats(&Stats);
  H.attachTraceBuffer(&Trace);
  H.attachLimits(&Cfg.Limits);
  H.attachFaults(&Faults);
  H.attachFuel(&FuelLeft);
  H.setSegmentRecycling(Cfg.EnableSegmentRecycling);
  Faults.attachVMStats(&Stats);
  H.addRootSource(this);
  GlobalTable = H.makeHashTable(/*EqualBased=*/false);
  HaltCode = H.makeCode(0, 0, 16, 0, H.intern("#%halt"), {},
                        {static_cast<uint8_t>(Op::Halt)});
  PermanentRoots.push_back(HaltCode);
  ReturnCode = H.makeCode(0, 0, 16, 0, H.intern("#%return"), {},
                          {static_cast<uint8_t>(Op::Return)});
  PermanentRoots.push_back(ReturnCode);
  installPrimitives(*this);
  installListPrimitives(*this);
  installStringPrimitives(*this);
  installControlPrimitives(*this);
  installWinderPrimitives(*this);
  installAttachmentPrimitives(*this);
  installPromptPrimitives(*this);
  installMarkPrimitives(*this);
  installParameterPrimitives(*this);
  installFiberPrimitives(*this);
}

VM::~VM() {
  // The sampler thread pokes this VM's signal word; join it before any
  // member is destroyed.
  Prof.stop();
  H.removeRootSource(this);
}

void VM::traceRoots(Heap &Heap) {
  Heap.traceValue(Regs.Seg);
  Heap.traceValue(Regs.CurCode);
  Heap.traceValue(Regs.Marks);
  Heap.traceValue(Regs.NextK);
  Heap.traceValue(Regs.Winders);
  Heap.traceValue(GlobalTable);
  for (Value V : PermanentRoots)
    Heap.traceValue(V);
  Heap.traceValue(PendingFn);
  Heap.traceValue(ImitationAtts);
  Heap.traceValue(SnapshotKey);
  for (Value V : PendingArgs)
    Heap.traceValue(V);
  for (const MarkStackEntry &E : MarkStack) {
    Heap.traceValue(E.Seg);
    Heap.traceValue(E.Key);
    Heap.traceValue(E.Val);
  }
  // Parked fibers hold their captured continuations (and the segments
  // those pin) only through the scheduler's queues.
  Fibers.traceRoots(Heap);
}

Value VM::globalCell(Value Sym) {
  Value Cell = htGet(GlobalTable, Sym, Value::False());
  if (Cell.isPair())
    return Cell;
  Cell = H.makePair(Value::undefined(), Sym);
  htSet(H, GlobalTable, Sym, Cell);
  return Cell;
}

void VM::setGlobal(const std::string &Name, Value V) {
  asPair(globalCell(H.intern(Name)))->Car = V;
}

Value VM::getGlobal(const std::string &Name) {
  return asPair(globalCell(H.intern(Name)))->Car;
}

void VM::defineNative(const std::string &Name, NativeFn Fn, int32_t MinArgs,
                      int32_t MaxArgs) {
  Value NameSym = H.intern(Name);
  Value N = H.makeNative(Fn, NameSym, MinArgs, MaxArgs);
  asPair(globalCell(NameSym))->Car = N;
}

/// Appends a mark-based stack snapshot to an error message: the values of
/// the prelude's trace key (with-stack-frame / profiled annotations), the
/// same data current-stack-snapshot reads. Best-effort — building the
/// snapshot allocates, and an error may arrive with the heap already at
/// its budget, so exhaustion here just drops the context.
static void appendStackContext(VM &M, std::string &Msg) {
  if (M.SnapshotKey.isUndefined())
    return;
  if (!M.Regs.Seg.isKind(ObjKind::StackSeg))
    return;
  try {
    Value Frames = markListAll(M.heap(), M.currentMarksList(), M.SnapshotKey,
                               Value::nil());
    if (!Frames.isPair())
      return;
    Msg += "\n  context:";
    int Shown = 0;
    for (Value P = Frames; P.isPair() && Shown < 12;
         P = asPair(P)->Cdr, ++Shown)
      Msg += " " + displayToString(asPair(P)->Car);
    if (Frames.isPair() && Shown == 12)
      Msg += " ...";
  } catch (const ResourceExhausted &) {
    // No room to describe the failure; the message stands on its own.
  }
}

Value VM::raiseError(const std::string &Msg) {
  if (!Failed) {
    Failed = true;
    if (ErrKind == ErrorKind::None)
      ErrKind = ErrorKind::Runtime;
    ErrMsg = Msg;
    if (Running)
      appendStackContext(*this, ErrMsg);
  }
  return Value::undefined();
}

Value VM::raiseErrorKind(ErrorKind Kind, const std::string &Msg) {
  if (!Failed && ErrKind == ErrorKind::None)
    ErrKind = Kind;
  return raiseError(Msg);
}

void VM::scheduleTailCall(Value Fn, const Value *Args, uint32_t NArgs) {
  CMK_CHECK(!PendingCall, "a native may schedule at most one tail call");
  PendingCall = true;
  PendingFn = Fn;
  PendingArgs.assign(Args, Args + NArgs);
}

Value cmk::typeError(VM &M, const char *Who, const char *Expected, Value Got) {
  return M.raiseError(std::string(Who) + ": expected " + Expected + ", got " +
                      writeToString(Got));
}

bool cmk::checkArity(VM &M, const char *Who, uint32_t NArgs, int32_t Min,
                     int32_t Max) {
  if (static_cast<int32_t>(NArgs) < Min ||
      (Max >= 0 && static_cast<int32_t>(NArgs) > Max)) {
    M.raiseError(std::string(Who) + ": wrong number of arguments");
    return false;
  }
  return true;
}

namespace {

/// Moves a frame under construction at [Hdr, Sp) onto a fresh segment when
/// it does not fit; the frames below Hdr become a captured continuation.
void overflowMovePending(VM &M, uint32_t &Hdr, uint32_t CalleeNeed,
                         Value MarksForRecord) {
  ++M.stats().SegmentOverflows;
  uint32_t PendingLen = M.Regs.Sp - Hdr;
  uint32_t OldHdr = Hdr;
  Value OldSegV = M.Regs.Seg;

  // Split below the pending frame.
  M.Regs.Sp = Hdr;
  Value KV = M.reifyAtSp(ContShot::Opportunistic);
  asCont(KV)->Marks = MarksForRecord;

  // Heap-frame mode emulates frame-per-segment allocation (Pycket-like),
  // so segments are sized to the frame instead of the regular chunk size.
  uint32_t Cap = M.config().HeapFrameMode
                     ? CalleeNeed + PendingLen + 64
                     : std::max(M.config().SegmentSlots,
                                CalleeNeed + PendingLen + 1024);
  Value NewSegV = M.heap().makeStackSeg(Cap);
  std::memcpy(asStackSeg(NewSegV)->Slots, asStackSeg(OldSegV)->Slots + OldHdr,
              sizeof(Value) * PendingLen);
  M.Regs.Seg = NewSegV;
  M.Regs.Base = 0;
  M.Regs.Fp = 0;
  M.Regs.Sp = PendingLen;
  Hdr = 0;
  // Usually the reified record above keeps the old segment referenced, but
  // when reifyAtSp collapsed to the existing chain the segment is vacated.
  M.maybeRecycleSegment(OldSegV);
}

/// Collects surplus arguments into a rest list. Args live in stack slots
/// [ArgBase, ArgBase+NArgs); afterwards the formals occupy
/// [ArgBase, ArgBase+NumParams).
bool bindArgs(VM &M, CodeObj *Code, uint32_t ArgBase, uint32_t NArgs,
              const char *Name) {
  bool HasRest = (Code->Flags & codeflags::HasRestArg) != 0;
  uint32_t Required = HasRest ? Code->NumArgs - 1 : Code->NumArgs;
  if (HasRest ? NArgs < Required : NArgs != Required) {
    M.raiseError(std::string(Name) + ": wrong number of arguments (got " +
                 std::to_string(NArgs) + ")");
    return false;
  }
  if (!HasRest)
    return true;
  // Build the rest list from the extra arguments, newest first.
  Value Rest = Value::nil();
  {
    GCRoot RestRoot(M.heap(), Rest);
    for (uint32_t I = NArgs; I > Required; --I) {
      StackSegObj *S = asStackSeg(M.Regs.Seg);
      RestRoot.set(M.heap().makePair(S->Slots[ArgBase + I - 1],
                                     RestRoot.get()));
    }
    Rest = RestRoot.get();
  }
  asStackSeg(M.Regs.Seg)->Slots[ArgBase + Required] = Rest;
  return true;
}

/// Human text for each limit trip; the catchable exception's message and
/// the fallback error share it.
const char *tripMessage(TripKind T) {
  switch (T) {
  case TripKind::HeapLimit:
    return "heap limit exceeded";
  case TripKind::StackLimit:
    return "stack depth limit exceeded";
  case TripKind::Timeout:
    return "evaluation timed out";
  case TripKind::Interrupt:
    return "evaluation interrupted";
  case TripKind::None:
    break;
  }
  return "limit trip";
}

/// Returned by value: engines run concurrently (support/pool.h), so a
/// function-local static buffer here would be a cross-engine data race.
std::string procName(Value Fn) {
  Value Name = Value::False();
  if (Fn.isClosure())
    Name = asCode(asClosure(Fn)->Code)->Name;
  else if (Fn.isNative())
    Name = asNative(Fn)->Name;
  if (!Name.isSymbol())
    return "procedure";
  return displayToString(Name);
}

} // namespace

void VM::installBaseFrame(Value Fn, const Value *Args, uint32_t NArgs) {
  GCRoot FnRoot(H, Fn);
  RootedValues ArgRoots(H);
  for (uint32_t I = 0; I < NArgs; ++I)
    ArgRoots.push(Args[I]);

  Value SegV = H.makeStackSeg(Cfg.SegmentSlots);
  Regs.Seg = SegV;
  Regs.Base = 0;
  Regs.Fp = 0;
  Regs.Marks = Value::nil();
  Regs.Winders = Value::nil();
  MarkStack.clear();

  // The bottom of the continuation chain is a record that resumes at a
  // lone Halt instruction, so applying a continuation captured at the base
  // behaves uniformly.
  Value HaltK = H.makeCont();
  ContObj *K = asCont(HaltK);
  // The halt record covers no slots, so it references no segment: a real
  // Seg here would pin the base segment against recycling for the whole
  // run (restoreByCopy handles empty nil-Seg slices).
  K->Seg = Value::nil();
  K->Lo = K->Hi = 0;
  K->RetFp = 0;
  K->RetCode = HaltCode;
  K->RetPc = Value::fixnum(0);
  K->setShot(ContShot::Full);
  Regs.NextK = HaltK;

  StackSegObj *S = asStackSeg(Regs.Seg);
  S->Slots[0] = Value::fixnum(0);
  S->Slots[1] = Value::underflowSentinel();
  S->Slots[2] = Value::fixnum(0);
  S->Slots[3] = FnRoot.get();
  for (uint32_t I = 0; I < NArgs; ++I)
    S->Slots[FrameHeaderSlots + I] = ArgRoots[I];
  Regs.Sp = FrameHeaderSlots + NArgs;
}

void VM::releaseRunState() {
  // A failed run leaves Regs pointing into whatever stack chain it died
  // on; detach so the condemned segments (possibly a whole budget's worth)
  // are garbage for the very next collection, not pinned until the next
  // run replaces them.
  Regs.Seg = Value::undefined();
  Regs.CurCode = Value::undefined();
  Regs.NextK = Value::undefined();
  Regs.Marks = Value::nil();
  Regs.Winders = Value::nil();
  Regs.Base = Regs.Fp = Regs.Sp = 0;
  Regs.Pc = 0;
  MarkStack.clear();
  // A pending call abandoned by the failure is dead too; traceRoots
  // traces PendingFn/PendingArgs unconditionally, so leaving them set
  // would strand the closure (and anything it closes over) until the
  // next scheduled call overwrites them.
  PendingCall = false;
  PendingFn = Value::undefined();
  PendingArgs.clear();
}

bool VM::pollingGoverned() const {
  // A cooperative-pool engine is always governed: per-fiber budgets arm
  // the deadline at every switch-in, and those deadlines are only noticed
  // by fuel-exhaustion polls.
  return Cfg.Limits.HeapBytes != 0 || Cfg.Limits.MaxLiveSegments != 0 ||
         Cfg.Limits.TimeoutMs != 0 || Fibers.CoopPool ||
         Cfg.Limits.FuelInterval != EngineLimits().FuelInterval;
}

int64_t VM::refillFuel() const {
  if (!pollingGoverned())
    return std::numeric_limits<int64_t>::max();
  return Cfg.Limits.FuelInterval ? Cfg.Limits.FuelInterval
                                 : EngineLimits().FuelInterval;
}

void VM::resetGovernance() {
  // A previous run may have been abandoned mid-flight (limit trip, hard
  // exhaustion): drop its pending-call and native-protocol state, consume
  // any undelivered trip, and re-arm the fuel and deadline.
  PendingCall = false;
  NativeTailCall = false;
  NativeJumped = false;
  ForceOverflowOnce = false;
  // Interrupts aimed at an idle engine are dropped by design (pool
  // semantics: interruptAll targets running jobs); stale sample pokes
  // from between runs are dropped with them so idle time never shows up
  // in a profile. Exception: a fiber-pool worker's jobs stay live
  // (parked) across the idle gaps between slices, so an interrupt that
  // lands between slices must survive into the next one.
  if (Fibers.preserveInterruptAcrossRuns())
    AsyncSignals.fetch_and(SigInterrupt, std::memory_order_relaxed);
  else
    AsyncSignals.store(0, std::memory_order_relaxed);
  Fibers.noteRunBoundary(*this);
  FuelLeft = refillFuel();
  DeadlineArmed = Cfg.Limits.TimeoutMs > 0;
  if (DeadlineArmed)
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(Cfg.Limits.TimeoutMs);
  H.resetGovernance();
}

TripKind VM::pollSafePoint() {
  FuelLeft = refillFuel();
  ++Stats.SafePointPolls;
  // Consume only the interrupt bit: a concurrent sample poke stays
  // pending for the next safe-point site. In cooperative-pool mode the
  // bit is additionally left armed unless a fiber is switched in —
  // consuming it inside scheduler glue would fail the slice with no job
  // to attribute the trip to, silently discarding the interrupt.
  if ((AsyncSignals.load(std::memory_order_relaxed) & SigInterrupt) &&
      (!Fibers.CoopPool || Fibers.interruptDeliverable())) {
    AsyncSignals.fetch_and(~SigInterrupt, std::memory_order_relaxed);
    ++Stats.LimitInterrupts;
    return TripKind::Interrupt;
  }
  if (H.hasPendingTrip()) {
    TripKind T = H.takePendingTrip();
    if (T == TripKind::HeapLimit)
      ++Stats.LimitHeapTrips;
    else if (T == TripKind::StackLimit)
      ++Stats.LimitStackTrips;
    return T;
  }
  if (DeadlineArmed && std::chrono::steady_clock::now() >= Deadline) {
    // One-shot per run: were the deadline to stay armed, the very next
    // poll would re-trip inside the program's own timeout handler.
    DeadlineArmed = false;
    ++Stats.LimitTimeoutTrips;
    return TripKind::Timeout;
  }
  return TripKind::None;
}

void VM::fillMetrics(MetricsRegistry &R) const {
  int N = 0;
  const StatsCounterDesc *Table = statsCounters(N);
  for (int I = 0; I < N; ++I)
    R.counter("cmarks_engine_events_total", "VM runtime event counters",
              {{"event", Table[I].Name}}, Stats.*(Table[I].Field));
  const HeapStats &HS = H.stats();
  R.counter("cmarks_engine_events_total", "VM runtime event counters",
            {{"event", "gc-collections"}}, HS.Collections);
  R.counter("cmarks_engine_events_total", "VM runtime event counters",
            {{"event", "gc-bytes-allocated"}}, HS.BytesAllocated);
  R.counter("cmarks_engine_trace_dropped_events_total",
            "Trace-ring events lost to wraparound", {}, Trace.dropped());
  R.counter("cmarks_engine_profile_samples_total",
            "Profile samples captured at safe points", {}, Prof.total());
  R.counter("cmarks_engine_profile_dropped_total",
            "Profile samples lost to ring wraparound", {}, Prof.dropped());
  R.gauge("cmarks_engine_heap_bytes", "Committed heap bytes (incl. garbage)",
          {}, static_cast<double>(H.bytesInUse()));
  R.gauge("cmarks_engine_live_segments", "Live stack segments", {},
          static_cast<double>(H.liveStackSegments()));
}

Value VM::applyProcedure(Value Fn, const Value *Args, uint32_t NArgs,
                         bool &Ok) {
  CMK_CHECK(!Running, "applyProcedure is not re-entrant");
  clearError();
  try {

  GCRoot FnRoot(H, Fn);
  RootedValues ArgRoots(H);
  for (uint32_t I = 0; I < NArgs; ++I)
    ArgRoots.push(Args[I]);

  // After the roots: re-arming a tripped heap budget may collect, and Fn
  // or the arguments might only be reachable through this call.
  resetGovernance();

  // Resolve native/pending chains until a closure (or plain result).
  for (;;) {
    Value F = FnRoot.get();
    if (F.isClosure())
      break;
    if (F.isNative()) {
      NativeObj *N = asNative(F);
      if (!checkArity(*this, procName(F).c_str(), NArgs, N->MinArgs,
                      N->MaxArgs)) {
        Ok = false;
        return Value::undefined();
      }
      // Natives invoked outside a run cannot touch continuation state;
      // give them a scratch frame context.
      installBaseFrame(F, ArgRoots.values().data(), NArgs);
      Regs.CurCode = Value::undefined();
      Running = true;
      Value Res =
          N->Fn(*this, asStackSeg(Regs.Seg)->Slots + FrameHeaderSlots, NArgs);
      Running = false;
      if (Failed) {
        releaseRunState();
        Ok = false;
        return Value::undefined();
      }
      if (!PendingCall) {
        Ok = true;
        return Res;
      }
      PendingCall = false;
      FnRoot.set(PendingFn);
      ArgRoots.clear();
      for (Value V : PendingArgs)
        ArgRoots.push(V);
      NArgs = static_cast<uint32_t>(PendingArgs.size());
      continue;
    }
    Ok = false;
    raiseError("apply: not a procedure: " + writeToString(F));
    return Value::undefined();
  }

  Value F = FnRoot.get();
  CodeObj *Code = asCode(asClosure(F)->Code);
  installBaseFrame(F, ArgRoots.values().data(), NArgs);
  if (!bindArgs(*this, Code, FrameHeaderSlots, NArgs,
                procName(F).c_str())) {
    Ok = false;
    return Value::undefined();
  }
  StackSegObj *S = asStackSeg(Regs.Seg);
  for (uint32_t I = Code->NumArgs; I < Code->NumLocals; ++I)
    S->Slots[FrameHeaderSlots + I] = Value::undefined();
  Regs.Sp = FrameHeaderSlots + Code->NumLocals;
  Regs.CurCode = asClosure(F)->Code;
  Regs.Pc = 0;

  Running = true;
  Value Result = run();
  Running = false;
  Ok = !Failed;
  if (Failed)
    releaseRunState();
  return Result;

  } catch (const ResourceExhausted &Ex) {
    // A resource was exhausted beyond its reserve (or the host is truly
    // out of memory). The run is abandoned; the engine itself stays
    // consistent: the heap was left untouched by the throwing allocation,
    // GCRoot/RootedValues unwound via RAII, and the dead stack segments
    // are garbage the next collection reclaims.
    Running = false;
    PendingCall = false;
    NativeTailCall = false;
    NativeJumped = false;
    releaseRunState();
    Failed = true;
    ErrKind = errorKindOf(Ex.Kind);
    ErrFatal = true;
    ErrMsg = Ex.What;
    Ok = false;
    return Value::undefined();
  }
}

// -----------------------------------------------------------------------------
// The interpreter loop.
// -----------------------------------------------------------------------------
//
// Two dispatch strategies share the same handler bodies:
//
//  - CMARKS_THREADED on a GCC/Clang compiler: computed-goto threading.
//    Every handler ends by jumping through a &&label table indexed by the
//    next opcode byte, so the indirect branch is replicated per handler
//    and the branch predictor can learn per-opcode successor patterns.
//  - otherwise: a portable switch. VM_NEXT() jumps back to a dispatch
//    label placed in front of the switch, so handler bodies are written
//    identically for both modes (VM_NEXT() is always a goto, never a
//    `break`/`continue`, and is therefore safe at any nesting depth).
//
// Safe points are hoisted out of the per-instruction path: fuel is
// decremented only at calls (Call/CallAttach/ConstCall/TailCall) and at
// taken backward branches — every loop passes one of those (this
// compiler's loops are tail calls; emitted jumps are forward If joins) —
// plus an end-of-run check so a budget trip raised by the final
// allocation is still delivered. Ungoverned engines (no EngineLimits
// armed) run with effectively infinite fuel and take zero safe-point
// polls; the per-site relaxed AsyncSignals load still delivers
// cross-thread requestInterrupt() and profiler sample pokes promptly,
// and the heap zeroing FuelLeft (FuelPoke) still forces the next site
// to poll a budget trip.

#if defined(CMARKS_THREADED) && (defined(__GNUC__) || defined(__clang__))
#define CMK_THREADED_DISPATCH 1
#else
#define CMK_THREADED_DISPATCH 0
#endif

Value VM::run() {
  // Cached registers. Slots can be cached because the collector never moves
  // objects; it must be re-fetched whenever Regs.Seg changes.
  CodeObj *CC = asCode(Regs.CurCode);
  const uint8_t *Ins = CC->instrs();
  Value *Consts = CC->consts();
  Value *Slots = asStackSeg(Regs.Seg)->Slots;
  uint32_t Pc = Regs.Pc;
  uint32_t Fp = Regs.Fp;
  uint32_t Sp = Regs.Sp;
  uint32_t NArgs = 0; // Shared by the call handlers that enter DoCall.

#define SYNC()                                                                 \
  do {                                                                         \
    Regs.Pc = Pc;                                                              \
    Regs.Fp = Fp;                                                              \
    Regs.Sp = Sp;                                                              \
  } while (0)
#define RELOAD()                                                               \
  do {                                                                         \
    CC = asCode(Regs.CurCode);                                                 \
    Ins = CC->instrs();                                                        \
    Consts = CC->consts();                                                     \
    Slots = asStackSeg(Regs.Seg)->Slots;                                       \
    Pc = Regs.Pc;                                                              \
    Fp = Regs.Fp;                                                              \
    Sp = Regs.Sp;                                                              \
  } while (0)
#define VMERROR(MSG)                                                           \
  do {                                                                         \
    SYNC();                                                                    \
    raiseError(MSG);                                                           \
    return Value::undefined();                                                 \
  } while (0)

#if CMK_THREADED_DISPATCH
#define VM_CASE(OPC) L_##OPC:
#define VM_NEXT() goto *DispatchTable[Ins[Pc]]
#else
#define VM_CASE(OPC) case Op::OPC:
#define VM_NEXT() goto L_Dispatch
#endif

// Hoisted safe point: taken at calls and backward branches. A trip is
// delivered by injecting a call to the prelude's #%limit-raise at this
// (synced) boundary, exactly as the old per-instruction poll did.
//
// The entry test is the same two instructions whether or not the sampling
// profiler exists: one fuel decrement+test and one relaxed load+test of
// the AsyncSignals word (which used to be the lone interrupt flag).
// Inside the cold block, a pending sample is captured FIRST and does not
// poll: fuel is untouched and pollSafePoint runs only for the same
// reasons it always did (fuel exhausted, or interrupt bit set), so
// SafePointPolls and the governed poll schedule are bit-for-bit
// identical with sampling on or off — the property the fuzzer's counter
// determinism check and the CI safe-point-polls gate both enforce.
#define VM_SAFEPOINT()                                                         \
  do {                                                                         \
    if (__builtin_expect(--FuelLeft <= 0, 0) ||                                \
        __builtin_expect(                                                      \
            AsyncSignals.load(std::memory_order_relaxed) != 0, 0)) {           \
      SYNC();                                                                  \
      if (__builtin_expect(AsyncSignals.load(std::memory_order_relaxed) &     \
                               SigSample, 0)) {                               \
        AsyncSignals.fetch_and(~SigSample, std::memory_order_relaxed);        \
        Prof.captureSample(*this);                                            \
      }                                                                        \
      if (FuelLeft <= 0 ||                                                     \
          (AsyncSignals.load(std::memory_order_relaxed) & SigInterrupt)) {     \
        TripKind Trip = pollSafePoint();                                       \
        if (Trip != TripKind::None) {                                          \
          if (!injectLimitRaise(Trip)) {                                       \
            raiseErrorKind(errorKindOf(Trip), tripMessage(Trip));              \
            return Value::undefined();                                         \
          }                                                                    \
          if (Failed)                                                          \
            return Value::undefined();                                         \
          RELOAD();                                                            \
          VM_NEXT();                                                           \
        }                                                                      \
      }                                                                        \
    }                                                                          \
  } while (0)

  // Inlined-primitive bodies, shared between the standalone opcodes
  // (ADV = 1) and the LocalPrim superinstruction (ADV = 4). Every body
  // ends in VM_NEXT() or VMERROR, so the macros are safe under either
  // dispatcher and inside the LocalPrim inner switch.

#define VM_PRIM_ADD(ADV)                                                       \
  {                                                                            \
    Value A = Slots[Sp - 2], B = Slots[Sp - 1];                                \
    if (A.isFixnum() && B.isFixnum()) {                                        \
      int64_t R;                                                               \
      if (!__builtin_add_overflow(A.asFixnum(), B.asFixnum(), &R) &&           \
          fitsFixnum(R)) {                                                     \
        Slots[Sp - 2] = Value::fixnum(R);                                      \
        --Sp;                                                                  \
        Pc += (ADV);                                                           \
        VM_NEXT();                                                             \
      }                                                                        \
    }                                                                          \
    SYNC();                                                                    \
    NumResult R = numAdd(H, A, B);                                             \
    if (!R.Ok)                                                                 \
      VMERROR("+: expected numbers");                                          \
    Slots[Sp - 2] = R.V;                                                       \
    --Sp;                                                                      \
    Pc += (ADV);                                                               \
    VM_NEXT();                                                                 \
  }

#define VM_PRIM_SUB(ADV)                                                       \
  {                                                                            \
    Value A = Slots[Sp - 2], B = Slots[Sp - 1];                                \
    if (A.isFixnum() && B.isFixnum()) {                                        \
      int64_t R;                                                               \
      if (!__builtin_sub_overflow(A.asFixnum(), B.asFixnum(), &R) &&           \
          fitsFixnum(R)) {                                                     \
        Slots[Sp - 2] = Value::fixnum(R);                                      \
        --Sp;                                                                  \
        Pc += (ADV);                                                           \
        VM_NEXT();                                                             \
      }                                                                        \
    }                                                                          \
    SYNC();                                                                    \
    NumResult R = numSub(H, A, B);                                             \
    if (!R.Ok)                                                                 \
      VMERROR("-: expected numbers");                                          \
    Slots[Sp - 2] = R.V;                                                       \
    --Sp;                                                                      \
    Pc += (ADV);                                                               \
    VM_NEXT();                                                                 \
  }

#define VM_PRIM_MUL(ADV)                                                       \
  {                                                                            \
    Value A = Slots[Sp - 2], B = Slots[Sp - 1];                                \
    SYNC();                                                                    \
    NumResult R = numMul(H, A, B);                                             \
    if (!R.Ok)                                                                 \
      VMERROR("*: expected numbers");                                          \
    Slots[Sp - 2] = R.V;                                                       \
    --Sp;                                                                      \
    Pc += (ADV);                                                               \
    VM_NEXT();                                                                 \
  }

#define VM_PRIM_CMP(OPV, ADV)                                                  \
  {                                                                            \
    Value A = Slots[Sp - 2], B = Slots[Sp - 1];                                \
    int Cmp;                                                                   \
    if (!numCompare(A, B, Cmp))                                                \
      VMERROR("comparison: expected numbers");                                 \
    bool R = false;                                                            \
    /* CmpUnordered (NaN) is false under every operator; the sign tests  */    \
    /* below would wrongly satisfy > and >= for the sentinel.            */    \
    if (Cmp != CmpUnordered) {                                                 \
      switch (OPV) {                                                           \
      case Op::NumLt:                                                          \
        R = Cmp < 0;                                                           \
        break;                                                                 \
      case Op::NumLe:                                                          \
        R = Cmp <= 0;                                                          \
        break;                                                                 \
      case Op::NumGt:                                                          \
        R = Cmp > 0;                                                           \
        break;                                                                 \
      case Op::NumGe:                                                          \
        R = Cmp >= 0;                                                          \
        break;                                                                 \
      default:                                                                 \
        R = Cmp == 0;                                                          \
        break;                                                                 \
      }                                                                        \
    }                                                                          \
    Slots[Sp - 2] = Value::boolean(R);                                         \
    --Sp;                                                                      \
    Pc += (ADV);                                                               \
    VM_NEXT();                                                                 \
  }

#define VM_PRIM_CONS(ADV)                                                      \
  {                                                                            \
    SYNC();                                                                    \
    Value P = H.makePair(Slots[Sp - 2], Slots[Sp - 1]);                        \
    Slots[Sp - 2] = P;                                                         \
    --Sp;                                                                      \
    Pc += (ADV);                                                               \
    VM_NEXT();                                                                 \
  }

#define VM_PRIM_CAR(ADV)                                                       \
  {                                                                            \
    Value P = Slots[Sp - 1];                                                   \
    if (!P.isPair())                                                           \
      VMERROR("car: expected pair, got " + writeToString(P));                  \
    Slots[Sp - 1] = asPair(P)->Car;                                            \
    Pc += (ADV);                                                               \
    VM_NEXT();                                                                 \
  }

#define VM_PRIM_CDR(ADV)                                                       \
  {                                                                            \
    Value P = Slots[Sp - 1];                                                   \
    if (!P.isPair())                                                           \
      VMERROR("cdr: expected pair, got " + writeToString(P));                  \
    Slots[Sp - 1] = asPair(P)->Cdr;                                            \
    Pc += (ADV);                                                               \
    VM_NEXT();                                                                 \
  }

#define VM_PRIM_NULLP(ADV)                                                     \
  {                                                                            \
    Slots[Sp - 1] = Value::boolean(Slots[Sp - 1].isNil());                     \
    Pc += (ADV);                                                               \
    VM_NEXT();                                                                 \
  }

#define VM_PRIM_PAIRP(ADV)                                                     \
  {                                                                            \
    Slots[Sp - 1] = Value::boolean(Slots[Sp - 1].isPair());                    \
    Pc += (ADV);                                                               \
    VM_NEXT();                                                                 \
  }

#define VM_PRIM_NOT(ADV)                                                       \
  {                                                                            \
    Slots[Sp - 1] = Value::boolean(Slots[Sp - 1].isFalse());                   \
    Pc += (ADV);                                                               \
    VM_NEXT();                                                                 \
  }

#define VM_PRIM_EQP(ADV)                                                       \
  {                                                                            \
    Value B = Slots[--Sp];                                                     \
    Slots[Sp - 1] = Value::boolean(Slots[Sp - 1] == B);                        \
    Pc += (ADV);                                                               \
    VM_NEXT();                                                                 \
  }

#define VM_PRIM_ZEROP(ADV)                                                     \
  {                                                                            \
    Value A = Slots[Sp - 1];                                                   \
    if (A.isFixnum())                                                          \
      Slots[Sp - 1] = Value::boolean(A.asFixnum() == 0);                       \
    else if (A.isFlonum())                                                     \
      Slots[Sp - 1] = Value::boolean(asFlonum(A)->Val == 0.0);                 \
    else                                                                       \
      VMERROR("zero?: expected number");                                       \
    Pc += (ADV);                                                               \
    VM_NEXT();                                                                 \
  }

#define VM_PRIM_INCDEC(D, ADV)                                                 \
  {                                                                            \
    Value A = Slots[Sp - 1];                                                   \
    if (A.isFixnum() && fitsFixnum(A.asFixnum() + (D))) {                      \
      Slots[Sp - 1] = Value::fixnum(A.asFixnum() + (D));                       \
    } else if (A.isFlonum()) {                                                 \
      SYNC();                                                                  \
      Slots[Sp - 1] = H.makeFlonum(asFlonum(A)->Val + (D));                    \
    } else {                                                                   \
      VMERROR("add1/sub1: expected number");                                   \
    }                                                                          \
    Pc += (ADV);                                                               \
    VM_NEXT();                                                                 \
  }

#if CMK_THREADED_DISPATCH
  // One entry per opcode, in exact Op enum order.
  static const void *const DispatchTable[] = {
      &&L_PushConst,     &&L_PushLocal,     &&L_SetLocal,
      &&L_PushLocalBox,  &&L_SetLocalBox,   &&L_PushFree,
      &&L_PushFreeBox,   &&L_SetFreeBox,    &&L_BoxLocal,
      &&L_PushGlobal,    &&L_SetGlobal,     &&L_DefineGlobal,
      &&L_Pop,           &&L_Dup,           &&L_MakeClosure,
      &&L_Jump,          &&L_JumpIfFalse,   &&L_Frame,
      &&L_Call,          &&L_TailCall,      &&L_CallAttach,
      &&L_Return,        &&L_Reify,         &&L_AttachSet,
      &&L_AttachGet,     &&L_AttachConsume, &&L_MarksPush,
      &&L_MarksPop,      &&L_MarksSetTop,   &&L_MarksTop,
      &&L_PushMarks,     &&L_MstkSet,       &&L_MstkPush,
      &&L_MstkPop,       &&L_Add,           &&L_Sub,
      &&L_Mul,           &&L_NumLt,         &&L_NumLe,
      &&L_NumGt,         &&L_NumGe,         &&L_NumEq,
      &&L_Cons,          &&L_Car,           &&L_Cdr,
      &&L_SetCarBang,    &&L_SetCdrBang,    &&L_NullP,
      &&L_PairP,         &&L_Not,           &&L_EqP,
      &&L_ZeroP,         &&L_Add1,          &&L_Sub1,
      &&L_VectorRef,     &&L_VectorSet,     &&L_Halt,
      &&L_LocalLocal,    &&L_LocalConst,    &&L_AddLocalConst,
      &&L_SubLocalConst, &&L_LocalPrim,     &&L_ConstCall,
      &&L_JumpIfNotZeroLocal, &&L_MarksEnterElided, &&L_MarksExitElided,
  };
  static_assert(sizeof(DispatchTable) / sizeof(void *) ==
                    static_cast<size_t>(Op::OpCount),
                "dispatch table must cover every opcode");
  VM_NEXT();
#else
L_Dispatch:
  switch (static_cast<Op>(Ins[Pc])) {
#endif

  VM_CASE(PushConst) {
    Slots[Sp++] = Consts[readU16(Ins + Pc + 1)];
    Pc += 3;
    VM_NEXT();
  }
  VM_CASE(PushLocal) {
    Slots[Sp++] = Slots[Fp + FrameHeaderSlots + readU16(Ins + Pc + 1)];
    Pc += 3;
    VM_NEXT();
  }
  VM_CASE(SetLocal) {
    Slots[Fp + FrameHeaderSlots + readU16(Ins + Pc + 1)] = Slots[--Sp];
    Pc += 3;
    VM_NEXT();
  }
  VM_CASE(PushLocalBox) {
    Value B = Slots[Fp + FrameHeaderSlots + readU16(Ins + Pc + 1)];
    Slots[Sp++] = asBox(B)->Val;
    Pc += 3;
    VM_NEXT();
  }
  VM_CASE(SetLocalBox) {
    Value B = Slots[Fp + FrameHeaderSlots + readU16(Ins + Pc + 1)];
    asBox(B)->Val = Slots[--Sp];
    Pc += 3;
    VM_NEXT();
  }
  VM_CASE(PushFree) {
    ClosureObj *C = asClosure(Slots[Fp + 3]);
    Slots[Sp++] = C->Free[readU16(Ins + Pc + 1)];
    Pc += 3;
    VM_NEXT();
  }
  VM_CASE(PushFreeBox) {
    ClosureObj *C = asClosure(Slots[Fp + 3]);
    Slots[Sp++] = asBox(C->Free[readU16(Ins + Pc + 1)])->Val;
    Pc += 3;
    VM_NEXT();
  }
  VM_CASE(SetFreeBox) {
    ClosureObj *C = asClosure(Slots[Fp + 3]);
    asBox(C->Free[readU16(Ins + Pc + 1)])->Val = Slots[--Sp];
    Pc += 3;
    VM_NEXT();
  }
  VM_CASE(BoxLocal) {
    uint32_t Slot = Fp + FrameHeaderSlots + readU16(Ins + Pc + 1);
    SYNC();
    Value B = H.makeBox(Slots[Slot]);
    Slots[Slot] = B;
    Pc += 3;
    VM_NEXT();
  }
  VM_CASE(PushGlobal) {
    Pair *Cell = asPair(Consts[readU16(Ins + Pc + 1)]);
    if (Cell->Car.isUndefined())
      VMERROR("unbound variable: " + displayToString(Cell->Cdr));
    Slots[Sp++] = Cell->Car;
    Pc += 3;
    VM_NEXT();
  }
  VM_CASE(SetGlobal)
  VM_CASE(DefineGlobal) {
    asPair(Consts[readU16(Ins + Pc + 1)])->Car = Slots[--Sp];
    Pc += 3;
    VM_NEXT();
  }
  VM_CASE(Pop) {
    --Sp;
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(Dup) {
    Slots[Sp] = Slots[Sp - 1];
    ++Sp;
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(MakeClosure) {
    Value Code = Consts[readU16(Ins + Pc + 1)];
    uint32_t NFree = readU16(Ins + Pc + 3);
    SYNC();
    Value Clos = H.makeClosure(Code, NFree);
    ClosureObj *C = asClosure(Clos);
    for (uint32_t I = 0; I < NFree; ++I)
      C->Free[I] = Slots[Sp - NFree + I];
    Sp -= NFree;
    Slots[Sp++] = Clos;
    Pc += 5;
    VM_NEXT();
  }
  VM_CASE(Jump) {
    uint32_t T = readU32(Ins + Pc + 1);
    if (__builtin_expect(T <= Pc, 0))
      VM_SAFEPOINT();
    Pc = T;
    VM_NEXT();
  }
  VM_CASE(JumpIfFalse) {
    Value V = Slots[--Sp];
    if (V.isFalse()) {
      uint32_t T = readU32(Ins + Pc + 1);
      if (__builtin_expect(T <= Pc, 0))
        VM_SAFEPOINT();
      Pc = T;
    } else {
      Pc += 5;
    }
    VM_NEXT();
  }
  VM_CASE(Frame) {
    Slots[Sp] = Value::undefined();
    Slots[Sp + 1] = Value::undefined();
    Slots[Sp + 2] = Value::undefined();
    Sp += 3;
    ++Pc;
    VM_NEXT();
  }

  VM_CASE(Call) {
    VM_SAFEPOINT();
    NArgs = readU16(Ins + Pc + 1);
    Pc += 3;
    goto DoCall;
  }
  VM_CASE(CallAttach) {
    VM_SAFEPOINT();
    NArgs = readU16(Ins + Pc + 1);
    Pc += 3;
    uint32_t Hdr = Sp - NArgs - FrameHeaderSlots;
    SYNC();
    preReifyForAttachCall(Hdr);
    Slots = asStackSeg(Regs.Seg)->Slots;
    goto DoCall;
  }
  VM_CASE(ConstCall) {
    VM_SAFEPOINT();
    Slots[Sp++] = Consts[readU16(Ins + Pc + 1)];
    NArgs = readU16(Ins + Pc + 3);
    Pc += 5;
    goto DoCall;
  }
DoCall : {
  uint32_t Hdr = Sp - NArgs - FrameHeaderSlots;
  Value Fn = Slots[Hdr + 3];

  // Fast path: a fitting closure call.
  if (Fn.isClosure()) {
    CodeObj *Code = asCode(asClosure(Fn)->Code);
    if (!(Code->Flags & codeflags::HasRestArg) && NArgs == Code->NumArgs &&
        !Cfg.HeapFrameMode &&
        Hdr + Code->FrameSize <= asStackSeg(Regs.Seg)->Capacity &&
        !forcedOverflow()) {
      if (!Slots[Hdr + 1].isUnderflowSentinel()) {
        Slots[Hdr + 0] = Value::fixnum(Fp);
        Slots[Hdr + 1] = Regs.CurCode;
        Slots[Hdr + 2] = Value::fixnum(Pc);
      }
      Fp = Hdr;
      for (uint32_t I = Code->NumArgs; I < Code->NumLocals; ++I)
        Slots[Fp + FrameHeaderSlots + I] = Value::undefined();
      Sp = Fp + FrameHeaderSlots + Code->NumLocals;
      Regs.CurCode = asClosure(Fn)->Code;
      Pc = 0;
      CC = asCode(Regs.CurCode);
      Ins = CC->instrs();
      Consts = CC->consts();
      VM_NEXT();
    }
  }

  SYNC();
  Dispatch D = dispatchSlowCall(Hdr, NArgs);
  if (Failed)
    return Value::undefined();
  if (D == Dispatch::Halt) {
    if (__builtin_expect(H.hasPendingTrip(), 0))
      goto DeliverExitTrip;
    return slot(Regs.Sp - 1);
  }
  RELOAD();
  VM_NEXT();
}

  VM_CASE(TailCall) {
    VM_SAFEPOINT();
    uint32_t TN = readU16(Ins + Pc + 1);
    uint32_t FnBase = Sp - TN - 1;
    // Move callee + args into the current frame (footnote 2: tail calls
    // reuse the caller's frame).
    for (uint32_t I = 0; I <= TN; ++I)
      Slots[Fp + 3 + I] = Slots[FnBase + I];
    Sp = Fp + FrameHeaderSlots + TN;
    Value Fn = Slots[Fp + 3];

    if (Fn.isClosure()) {
      CodeObj *Code = asCode(asClosure(Fn)->Code);
      if (!(Code->Flags & codeflags::HasRestArg) && TN == Code->NumArgs &&
          Fp + Code->FrameSize <= asStackSeg(Regs.Seg)->Capacity &&
          !forcedOverflow()) {
        for (uint32_t I = Code->NumArgs; I < Code->NumLocals; ++I)
          Slots[Fp + FrameHeaderSlots + I] = Value::undefined();
        Sp = Fp + FrameHeaderSlots + Code->NumLocals;
        Regs.CurCode = asClosure(Fn)->Code;
        Pc = 0;
        CC = asCode(Regs.CurCode);
        Ins = CC->instrs();
        Consts = CC->consts();
        VM_NEXT();
      }
    }

    SYNC();
    Dispatch D = dispatchSlowTail(TN);
    if (Failed)
      return Value::undefined();
    if (D == Dispatch::Halt) {
      if (__builtin_expect(H.hasPendingTrip(), 0))
        goto DeliverExitTrip;
      return slot(Regs.Sp - 1);
    }
    RELOAD();
    VM_NEXT();
  }

  VM_CASE(Return) {
    Value Result = Slots[Sp - 1];
    if (Cfg.MarkStackMode) {
      while (!MarkStack.empty() && MarkStack.back().Seg == Regs.Seg &&
             MarkStack.back().Fp >= Fp)
        MarkStack.pop_back();
    }
    Value RetCode = Slots[Fp + 1];
    if (RetCode.isUnderflowSentinel()) {
      Regs.Sp = Fp; // Discard the dead frame before underflow.
      Regs.Fp = Fp;
      Regs.Pc = Pc;
      if (!underflow(Result)) {
        if (__builtin_expect(H.hasPendingTrip(), 0))
          goto DeliverExitTrip;
        return slot(Regs.Sp - 1);
      }
      RELOAD();
      VM_NEXT();
    }
    uint32_t CallerFp = static_cast<uint32_t>(Slots[Fp + 0].asFixnum());
    uint32_t NewSp = Fp;
    Slots[NewSp++] = Result;
    Sp = NewSp;
    Pc = static_cast<uint32_t>(Slots[Fp + 2].asFixnum());
    Fp = CallerFp;
    Regs.CurCode = RetCode;
    CC = asCode(RetCode);
    Ins = CC->instrs();
    Consts = CC->consts();
    VM_NEXT();
  }

  // --- Continuation attachments (paper 7.1/7.2) --------------------------
  VM_CASE(Reify) {
    SYNC();
    reifyCurrentFrame();
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(AttachSet) {
    SYNC();
    CMK_TRACE_EV(Trace, AttachSet);
    Value V = Slots[Sp - 1];
    Regs.Marks = H.makePair(V, asCont(Regs.NextK)->Marks);
    --Sp;
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(AttachGet) {
    // The frame has an attachment iff it is reified and the marks
    // register differs from the record's marks (paper 7.2).
    bool Reified = Slots[Fp + 1].isUnderflowSentinel();
    if (Reified && !Regs.NextK.isNil() &&
        Regs.Marks != asCont(Regs.NextK)->Marks)
      Slots[Sp - 1] = car(Regs.Marks);
    else if (Reified && Regs.NextK.isNil() && !Regs.Marks.isNil())
      Slots[Sp - 1] = car(Regs.Marks); // Bottom frame of the continuation.
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(AttachConsume) {
    bool Reified = Slots[Fp + 1].isUnderflowSentinel();
    if (Reified && !Regs.NextK.isNil() &&
        Regs.Marks != asCont(Regs.NextK)->Marks) {
      Slots[Sp - 1] = car(Regs.Marks);
      CMK_TRACE_EV(Trace, AttachConsume);
      Regs.Marks = asCont(Regs.NextK)->Marks;
    } else if (Reified && Regs.NextK.isNil() && !Regs.Marks.isNil()) {
      Slots[Sp - 1] = car(Regs.Marks); // Bottom frame of the continuation.
      CMK_TRACE_EV(Trace, AttachConsume);
      Regs.Marks = Value::nil();
    }
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(MarksPush) {
    SYNC();
    CMK_TRACE_EV(Trace, MarksPush);
    Regs.Marks = H.makePair(Slots[Sp - 1], Regs.Marks);
    --Sp;
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(MarksPop) {
    CMK_TRACE_EV(Trace, MarksPop);
    Regs.Marks = cdr(Regs.Marks);
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(MarksSetTop) {
    SYNC();
    Regs.Marks = H.makePair(Slots[Sp - 1], cdr(Regs.Marks));
    --Sp;
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(MarksTop) {
    Slots[Sp++] = car(Regs.Marks);
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(PushMarks) {
    Slots[Sp++] = Regs.Marks;
    ++Pc;
    VM_NEXT();
  }

  // --- Old-Racket-style mark stack ----------------------------------------
  VM_CASE(MstkSet) {
    Value Val = Slots[--Sp];
    Value Key = Slots[--Sp];
    bool Replaced = false;
    for (size_t I = MarkStack.size(); I > 0; --I) {
      MarkStackEntry &E = MarkStack[I - 1];
      if (!(E.Seg == Regs.Seg) || E.Fp != Fp)
        break;
      if (E.Key == Key) {
        E.Val = Val;
        Replaced = true;
        break;
      }
    }
    if (!Replaced)
      MarkStack.push_back({Regs.Seg, Fp, Key, Val});
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(MstkPush) {
    Value Val = Slots[--Sp];
    Value Key = Slots[--Sp];
    MarkStack.push_back({Regs.Seg, Fp, Key, Val});
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(MstkPop) {
    MarkStack.pop_back();
    ++Pc;
    VM_NEXT();
  }

  // --- Inlined primitives -------------------------------------------------
  VM_CASE(Add) VM_PRIM_ADD(1)
  VM_CASE(Sub) VM_PRIM_SUB(1)
  VM_CASE(Mul) VM_PRIM_MUL(1)
  VM_CASE(NumLt) VM_PRIM_CMP(Op::NumLt, 1)
  VM_CASE(NumLe) VM_PRIM_CMP(Op::NumLe, 1)
  VM_CASE(NumGt) VM_PRIM_CMP(Op::NumGt, 1)
  VM_CASE(NumGe) VM_PRIM_CMP(Op::NumGe, 1)
  VM_CASE(NumEq) VM_PRIM_CMP(Op::NumEq, 1)
  VM_CASE(Cons) VM_PRIM_CONS(1)
  VM_CASE(Car) VM_PRIM_CAR(1)
  VM_CASE(Cdr) VM_PRIM_CDR(1)
  VM_CASE(SetCarBang) {
    Value V = Slots[--Sp];
    Value P = Slots[Sp - 1];
    if (!P.isPair())
      VMERROR("set-car!: expected pair");
    asPair(P)->Car = V;
    Slots[Sp - 1] = Value::voidValue();
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(SetCdrBang) {
    Value V = Slots[--Sp];
    Value P = Slots[Sp - 1];
    if (!P.isPair())
      VMERROR("set-cdr!: expected pair");
    asPair(P)->Cdr = V;
    Slots[Sp - 1] = Value::voidValue();
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(NullP) VM_PRIM_NULLP(1)
  VM_CASE(PairP) VM_PRIM_PAIRP(1)
  VM_CASE(Not) VM_PRIM_NOT(1)
  VM_CASE(EqP) VM_PRIM_EQP(1)
  VM_CASE(ZeroP) VM_PRIM_ZEROP(1)
  VM_CASE(Add1) VM_PRIM_INCDEC(1, 1)
  VM_CASE(Sub1) VM_PRIM_INCDEC(-1, 1)
  VM_CASE(VectorRef) {
    Value Idx = Slots[--Sp];
    Value Vec = Slots[Sp - 1];
    if (!Vec.isVector() || !Idx.isFixnum())
      VMERROR("vector-ref: expected vector and index");
    VectorObj *V = asVector(Vec);
    int64_t I = Idx.asFixnum();
    if (I < 0 || I >= V->Len)
      VMERROR("vector-ref: index out of range");
    Slots[Sp - 1] = V->Elems[I];
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(VectorSet) {
    Value Val = Slots[--Sp];
    Value Idx = Slots[--Sp];
    Value Vec = Slots[Sp - 1];
    if (!Vec.isVector() || !Idx.isFixnum())
      VMERROR("vector-set!: expected vector and index");
    VectorObj *V = asVector(Vec);
    int64_t I = Idx.asFixnum();
    if (I < 0 || I >= V->Len)
      VMERROR("vector-set!: index out of range");
    V->Elems[I] = Val;
    Slots[Sp - 1] = Value::voidValue();
    ++Pc;
    VM_NEXT();
  }

  VM_CASE(Halt) {
    SYNC();
    if (__builtin_expect(H.hasPendingTrip(), 0))
      goto DeliverExitTrip;
    return Slots[Sp - 1];
  }

  // --- Superinstructions (compiler/peephole.cpp) ---------------------------
  VM_CASE(LocalLocal) {
    Slots[Sp] = Slots[Fp + FrameHeaderSlots + readU16(Ins + Pc + 1)];
    Slots[Sp + 1] = Slots[Fp + FrameHeaderSlots + readU16(Ins + Pc + 3)];
    Sp += 2;
    Pc += 5;
    VM_NEXT();
  }
  VM_CASE(LocalConst) {
    Slots[Sp] = Slots[Fp + FrameHeaderSlots + readU16(Ins + Pc + 1)];
    Slots[Sp + 1] = Consts[readU16(Ins + Pc + 3)];
    Sp += 2;
    Pc += 5;
    VM_NEXT();
  }
  VM_CASE(AddLocalConst) {
    Value A = Slots[Fp + FrameHeaderSlots + readU16(Ins + Pc + 1)];
    Value B = Consts[readU16(Ins + Pc + 3)];
    if (A.isFixnum() && B.isFixnum()) {
      int64_t R;
      if (!__builtin_add_overflow(A.asFixnum(), B.asFixnum(), &R) &&
          fitsFixnum(R)) {
        Slots[Sp++] = Value::fixnum(R);
        Pc += 5;
        VM_NEXT();
      }
    }
    SYNC();
    NumResult R = numAdd(H, A, B);
    if (!R.Ok)
      VMERROR("+: expected numbers");
    Slots[Sp++] = R.V;
    Pc += 5;
    VM_NEXT();
  }
  VM_CASE(SubLocalConst) {
    Value A = Slots[Fp + FrameHeaderSlots + readU16(Ins + Pc + 1)];
    Value B = Consts[readU16(Ins + Pc + 3)];
    if (A.isFixnum() && B.isFixnum()) {
      int64_t R;
      if (!__builtin_sub_overflow(A.asFixnum(), B.asFixnum(), &R) &&
          fitsFixnum(R)) {
        Slots[Sp++] = Value::fixnum(R);
        Pc += 5;
        VM_NEXT();
      }
    }
    SYNC();
    NumResult R = numSub(H, A, B);
    if (!R.Ok)
      VMERROR("-: expected numbers");
    Slots[Sp++] = R.V;
    Pc += 5;
    VM_NEXT();
  }
  VM_CASE(LocalPrim) {
    Slots[Sp++] = Slots[Fp + FrameHeaderSlots + readU16(Ins + Pc + 1)];
    switch (static_cast<Op>(Ins[Pc + 3])) {
    case Op::Add:
      VM_PRIM_ADD(4)
    case Op::Sub:
      VM_PRIM_SUB(4)
    case Op::Mul:
      VM_PRIM_MUL(4)
    case Op::NumLt:
      VM_PRIM_CMP(Op::NumLt, 4)
    case Op::NumLe:
      VM_PRIM_CMP(Op::NumLe, 4)
    case Op::NumGt:
      VM_PRIM_CMP(Op::NumGt, 4)
    case Op::NumGe:
      VM_PRIM_CMP(Op::NumGe, 4)
    case Op::NumEq:
      VM_PRIM_CMP(Op::NumEq, 4)
    case Op::Cons:
      VM_PRIM_CONS(4)
    case Op::Car:
      VM_PRIM_CAR(4)
    case Op::Cdr:
      VM_PRIM_CDR(4)
    case Op::NullP:
      VM_PRIM_NULLP(4)
    case Op::PairP:
      VM_PRIM_PAIRP(4)
    case Op::Not:
      VM_PRIM_NOT(4)
    case Op::EqP:
      VM_PRIM_EQP(4)
    case Op::ZeroP:
      VM_PRIM_ZEROP(4)
    case Op::Add1:
      VM_PRIM_INCDEC(1, 4)
    case Op::Sub1:
      VM_PRIM_INCDEC(-1, 4)
    default:
      VMERROR("push-local-prim: corrupt embedded opcode");
    }
  }
  VM_CASE(JumpIfNotZeroLocal) {
    Value A = Slots[Fp + FrameHeaderSlots + readU16(Ins + Pc + 1)];
    bool IsZero;
    if (A.isFixnum())
      IsZero = A.asFixnum() == 0;
    else if (A.isFlonum())
      IsZero = asFlonum(A)->Val == 0.0;
    else
      VMERROR("zero?: expected number");
    if (IsZero) {
      Pc += 7;
    } else {
      uint32_t T = readU32(Ins + Pc + 3);
      if (__builtin_expect(T <= Pc, 0))
        VM_SAFEPOINT();
      Pc = T;
    }
    VM_NEXT();
  }
  VM_CASE(MarksEnterElided) {
    // A MarksPush whose extent provably cannot observe the mark (no call,
    // jump, capture, or attachment operation before the matching pop):
    // the cons is elided, the value discarded. The trace event survives so
    // traced programs see identical MarksPush/MarksPop sequences.
    CMK_TRACE_EV(Trace, MarksPush);
    --Sp;
    ++Pc;
    VM_NEXT();
  }
  VM_CASE(MarksExitElided) {
    CMK_TRACE_EV(Trace, MarksPop);
    ++Pc;
    VM_NEXT();
  }

  // Reached (by goto only) when a run completed while a budget trip was
  // still pending — e.g. the final allocation tripped the heap budget and
  // no safe-point site ran before the continuation chain emptied. Regs
  // are authoritative here. Deliver the trip instead of the final value,
  // exactly as the old per-instruction poll would have.
DeliverExitTrip : {
  TripKind Trip = pollSafePoint();
  if (Trip == TripKind::None)
    return slot(Regs.Sp - 1);
  if (!injectLimitRaise(Trip)) {
    raiseErrorKind(errorKindOf(Trip), tripMessage(Trip));
    return Value::undefined();
  }
  if (Failed)
    return Value::undefined();
  RELOAD();
  VM_NEXT();
}

#if !CMK_THREADED_DISPATCH
  case Op::OpCount:
    break;
  }
  CMK_UNREACHABLE("corrupt bytecode");
#else
  CMK_UNREACHABLE("fell out of the threaded dispatch chain");
#endif

#undef SYNC
#undef RELOAD
#undef VMERROR
#undef VM_CASE
#undef VM_NEXT
#undef VM_SAFEPOINT
#undef VM_PRIM_ADD
#undef VM_PRIM_SUB
#undef VM_PRIM_MUL
#undef VM_PRIM_CMP
#undef VM_PRIM_CONS
#undef VM_PRIM_CAR
#undef VM_PRIM_CDR
#undef VM_PRIM_NULLP
#undef VM_PRIM_PAIRP
#undef VM_PRIM_NOT
#undef VM_PRIM_EQP
#undef VM_PRIM_ZEROP
#undef VM_PRIM_INCDEC
}

// -----------------------------------------------------------------------------
// Out-of-line call dispatch: natives, continuations, parameters, overflow.
// -----------------------------------------------------------------------------

void VM::preReifyForAttachCall(uint32_t Hdr) {
  CMK_CHECK(Regs.Marks.isPair(), "CallAttach requires a pending mark");
  CMK_CHECK(Hdr > Regs.Base,
            "CallAttach frames sit above the executing frame");
  uint32_t SavedSp = Regs.Sp;
  Value RecMarks = cdr(Regs.Marks);
  Regs.Sp = Hdr;
  ++Stats.ReifyForAttachCall;
  CMK_TRACE_EV(Trace, AttachCallReify);
  Value KV = reifyAtSp(ContShot::Opportunistic);
  // Paper 7.2: installing (rest marks) instead of marks communicates to
  // the called function that an attachment is present and pops it on
  // return.
  asCont(KV)->Marks = RecMarks;
  Regs.Sp = SavedSp;
  Value *Slots = asStackSeg(Regs.Seg)->Slots;
  Slots[Hdr + 0] = Value::fixnum(0);
  Slots[Hdr + 1] = Value::underflowSentinel();
  Slots[Hdr + 2] = Value::fixnum(0);
}

/// Finishes a return of \p Res from the current frame (used when a native
/// in tail position produced a plain value).
static VM::Dispatch returnFromFrame(VM &M, Value Res) {
  if (M.config().MarkStackMode) {
    while (!M.MarkStack.empty() && M.MarkStack.back().Seg == M.Regs.Seg &&
           M.MarkStack.back().Fp >= M.Regs.Fp)
      M.MarkStack.pop_back();
  }
  Value *Slots = asStackSeg(M.Regs.Seg)->Slots;
  uint32_t Fp = M.Regs.Fp;
  Value RetCode = Slots[Fp + 1];
  if (RetCode.isUnderflowSentinel()) {
    M.Regs.Sp = Fp;
    return M.underflow(Res) ? VM::Dispatch::Done : VM::Dispatch::Halt;
  }
  uint32_t CallerFp = static_cast<uint32_t>(Slots[Fp + 0].asFixnum());
  uint32_t RetPc = static_cast<uint32_t>(Slots[Fp + 2].asFixnum());
  M.Regs.Sp = Fp;
  Slots[M.Regs.Sp++] = Res;
  M.Regs.Fp = CallerFp;
  M.Regs.CurCode = RetCode;
  M.Regs.Pc = RetPc;
  return VM::Dispatch::Done;
}

/// Pushes a value at the resume point after a native call (or routes it
/// through the underflow chain when the native reified at the call).
static VM::Dispatch deliverNativeResult(VM &M, Value Res) {
  if (M.Regs.Sp == M.Regs.Base)
    return M.underflow(Res) ? VM::Dispatch::Done : VM::Dispatch::Halt;
  asStackSeg(M.Regs.Seg)->Slots[M.Regs.Sp++] = Res;
  return VM::Dispatch::Done;
}

/// Builds a frame for a pending (scheduled) call at the current stack top.
/// Returns the header index. Splits to a fresh segment when the header and
/// arguments would not fit.
static uint32_t buildPendingFrame(VM &M) {
  uint32_t NArgs = static_cast<uint32_t>(M.PendingArgs.size());
  uint32_t Hdr = M.Regs.Sp;
  StackSegObj *S = asStackSeg(M.Regs.Seg);
  if (Hdr + FrameHeaderSlots + NArgs + 64 > S->Capacity) {
    ++M.stats().SegmentOverflows;
    if (Hdr != M.Regs.Base)
      M.reifyAtSp(ContShot::Opportunistic);
    Value OldSegV = M.Regs.Seg;
    Value NewSegV = M.heap().makeStackSeg(
        std::max(M.config().SegmentSlots, NArgs + 1024));
    M.Regs.Seg = NewSegV;
    M.Regs.Base = 0;
    M.Regs.Fp = 0;
    M.Regs.Sp = 0;
    Hdr = 0;
    M.maybeRecycleSegment(OldSegV);
  }
  Value *Slots = asStackSeg(M.Regs.Seg)->Slots;
  if (Hdr == M.Regs.Base) {
    Slots[Hdr + 0] = Value::fixnum(0);
    Slots[Hdr + 1] = Value::underflowSentinel();
    Slots[Hdr + 2] = Value::fixnum(0);
  } else {
    Slots[Hdr + 0] = Value::fixnum(M.Regs.Fp);
    Slots[Hdr + 1] = M.Regs.CurCode;
    Slots[Hdr + 2] = Value::fixnum(M.Regs.Pc);
  }
  Slots[Hdr + 3] = M.PendingFn;
  for (uint32_t I = 0; I < NArgs; ++I)
    Slots[Hdr + FrameHeaderSlots + I] = M.PendingArgs[I];
  M.Regs.Sp = Hdr + FrameHeaderSlots + NArgs;
  return Hdr;
}

bool VM::injectLimitRaise(TripKind Trip) {
  // #%limit-raise is the prelude's contract with the VM: it raises a
  // catchable limit exception (running dynamic-wind after-thunks on the
  // way to the handler) and never returns normally — a normal return
  // would push a stray value onto the interrupted expression stack.
  Value Fn = getGlobal("#%limit-raise");
  if (!Fn.isClosure())
    return false;
  // PendingFn/PendingArgs are GC roots, so building the second argument
  // cannot lose the first.
  PendingFn = Fn;
  PendingArgs.clear();
  PendingArgs.push_back(H.intern(tripKindName(Trip)));
  PendingArgs.push_back(H.makeString(tripMessage(Trip)));
  uint32_t Hdr = buildPendingFrame(*this);
  // A closure call only sets up registers; it cannot halt the run here.
  dispatchSlowCall(Hdr, static_cast<uint32_t>(PendingArgs.size()));
  return true;
}

bool VM::deliverTripFromNative() {
  // Cheap pre-check so an innocent poll does not disturb the fuel
  // schedule or the SafePointPolls counter (both CI-gated): only consume
  // a poll when something is actually pending.
  bool Pending =
      (AsyncSignals.load(std::memory_order_relaxed) & SigInterrupt) != 0 ||
      H.hasPendingTrip() ||
      (DeadlineArmed && std::chrono::steady_clock::now() >= Deadline);
  if (!Pending)
    return false;
  TripKind Trip = pollSafePoint();
  if (Trip == TripKind::None)
    return false;
  Value Fn = getGlobal("#%limit-raise");
  if (Fn.isClosure()) {
    // The symbol is immortal (interned), so makeString cannot lose it.
    Value A[2] = {H.intern(tripKindName(Trip)), Value::undefined()};
    A[1] = H.makeString(tripMessage(Trip));
    scheduleTailCall(Fn, A, 2);
  } else {
    raiseErrorKind(errorKindOf(Trip), tripMessage(Trip));
  }
  return true;
}

VM::Dispatch VM::dispatchSlowCall(uint32_t Hdr, uint32_t NArgs) {
  for (;;) {
    Value *Slots = asStackSeg(Regs.Seg)->Slots;
    Value Fn = Slots[Hdr + 3];

    if (Fn.isClosure()) {
      CodeObj *Code = asCode(asClosure(Fn)->Code);
      if (!bindArgs(*this, Code, Hdr + FrameHeaderSlots, NArgs,
                    procName(Fn).c_str()))
        return Dispatch::Done;
      Slots = asStackSeg(Regs.Seg)->Slots;
      Regs.Sp = Hdr + FrameHeaderSlots + Code->NumArgs;
      bool Overflow =
          Cfg.HeapFrameMode ||
          Hdr + Code->FrameSize > asStackSeg(Regs.Seg)->Capacity;
      if (ForceOverflowOnce) {
        // Overflow fault site: the frame fits, but take the mid-frame
        // overflow machinery anyway (semantics-preserving).
        ForceOverflowOnce = false;
        Overflow = true;
      }
      if (Overflow) {
        if (Slots[Hdr + 1].isUnderflowSentinel() && Hdr == Regs.Base) {
          // Already at a stack base (pre-reified CallAttach or pending
          // frame): just move the pending frame to a fresh segment.
          ++Stats.SegmentOverflows;
          uint32_t Len = Regs.Sp - Hdr;
          Value OldSegV = Regs.Seg;
          Value NewSegV = H.makeStackSeg(
              std::max(Cfg.SegmentSlots, Code->FrameSize + 1024));
          std::memcpy(asStackSeg(NewSegV)->Slots,
                      asStackSeg(OldSegV)->Slots + Hdr, sizeof(Value) * Len);
          Regs.Seg = NewSegV;
          Regs.Base = 0;
          Regs.Sp = Len;
          Hdr = 0;
          // The pending frame was the vacated segment's only content (it
          // sat at the stack base); without this, heap-frame mode pays a
          // second segment allocation per call on the return path.
          maybeRecycleSegment(OldSegV);
        } else {
          overflowMovePending(*this, Hdr, Code->FrameSize, Regs.Marks);
        }
        Slots = asStackSeg(Regs.Seg)->Slots;
        Slots[Hdr + 0] = Value::fixnum(0);
        Slots[Hdr + 1] = Value::underflowSentinel();
        Slots[Hdr + 2] = Value::fixnum(0);
      } else if (!Slots[Hdr + 1].isUnderflowSentinel()) {
        Slots[Hdr + 0] = Value::fixnum(Regs.Fp);
        Slots[Hdr + 1] = Regs.CurCode;
        Slots[Hdr + 2] = Value::fixnum(Regs.Pc);
      }
      Regs.Fp = Hdr;
      for (uint32_t I = Code->NumArgs; I < Code->NumLocals; ++I)
        Slots[Regs.Fp + FrameHeaderSlots + I] = Value::undefined();
      Regs.Sp = Regs.Fp + FrameHeaderSlots + Code->NumLocals;
      Regs.CurCode = asClosure(Fn)->Code;
      Regs.Pc = 0;
      return Dispatch::Done;
    }

    if (Fn.isNative()) {
      NativeObj *N = asNative(Fn);
      Regs.Sp = Hdr; // The call frame is logically popped.
      if (!checkArity(*this, procName(Fn).c_str(), NArgs, N->MinArgs,
                      N->MaxArgs))
        return Dispatch::Done;
      NativeJumped = false;
      Value Res = N->Fn(*this, Slots + Hdr + FrameHeaderSlots, NArgs);
      if (Failed)
        return Dispatch::Done;
      if (PendingCall) {
        PendingCall = false;
        Hdr = buildPendingFrame(*this);
        NArgs = static_cast<uint32_t>(PendingArgs.size());
        continue;
      }
      if (NativeJumped)
        return Dispatch::Done; // applyContinuation placed the result.
      return deliverNativeResult(*this, Res);
    }

    if (Fn.isCont()) {
      if (NArgs != 1) {
        raiseError("continuation expects 1 argument");
        return Dispatch::Done;
      }
      Value Arg = Slots[Hdr + FrameHeaderSlots];
      Regs.Sp = Hdr;
      applyContinuation(Fn, Arg);
      return Dispatch::Done;
    }

    if (Fn.isCompositeCont()) {
      if (NArgs != 1) {
        raiseError("composable continuation expects 1 argument");
        return Dispatch::Done;
      }
      Value Arg = Slots[Hdr + FrameHeaderSlots];
      Regs.Sp = Hdr;
      applyCompositeCont(*this, Fn, Arg, /*TailMode=*/false);
      return Dispatch::Done;
    }

    if (Fn.isParameter()) {
      if (NArgs != 0) {
        raiseError("parameter accepts no arguments");
        return Dispatch::Done;
      }
      Regs.Sp = Hdr;
      Value Res = parameterLookup(*this, Fn);
      if (Failed)
        return Dispatch::Done;
      return deliverNativeResult(*this, Res);
    }

    raiseError("application of non-procedure: " + writeToString(Fn));
    return Dispatch::Done;
  }
}

VM::Dispatch VM::dispatchSlowTail(uint32_t NArgs) {
  for (;;) {
    Value *Slots = asStackSeg(Regs.Seg)->Slots;
    uint32_t Fp = Regs.Fp;
    Value Fn = Slots[Fp + 3];

    if (Fn.isClosure()) {
      CodeObj *Code = asCode(asClosure(Fn)->Code);
      if (!bindArgs(*this, Code, Fp + FrameHeaderSlots, NArgs,
                    procName(Fn).c_str()))
        return Dispatch::Done;
      Slots = asStackSeg(Regs.Seg)->Slots;
      bool TailOverflow =
          Fp + Code->FrameSize > asStackSeg(Regs.Seg)->Capacity;
      if (ForceOverflowOnce) {
        ForceOverflowOnce = false;
        TailOverflow = true;
      }
      if (TailOverflow) {
        // Overflow on a tail call: reify, then move this frame to a fresh
        // segment (the record keeps the old one alive for the copy-back).
        ++Stats.SegmentOverflows;
        Regs.Sp = Fp + FrameHeaderSlots + Code->NumArgs;
        reifyCurrentFrame();
        uint32_t Len = Regs.Sp - Fp;
        Value OldSegV = Regs.Seg;
        Value NewSegV = H.makeStackSeg(
            std::max(Cfg.SegmentSlots, Code->FrameSize + 1024));
        std::memcpy(asStackSeg(NewSegV)->Slots,
                    asStackSeg(OldSegV)->Slots + Fp, sizeof(Value) * Len);
        Regs.Seg = NewSegV;
        Regs.Base = 0;
        Regs.Fp = Fp = 0;
        Slots = asStackSeg(Regs.Seg)->Slots;
        maybeRecycleSegment(OldSegV);
      }
      for (uint32_t I = Code->NumArgs; I < Code->NumLocals; ++I)
        Slots[Fp + FrameHeaderSlots + I] = Value::undefined();
      Regs.Sp = Fp + FrameHeaderSlots + Code->NumLocals;
      Regs.CurCode = asClosure(Fn)->Code;
      Regs.Pc = 0;
      return Dispatch::Done;
    }

    if (Fn.isNative()) {
      NativeObj *N = asNative(Fn);
      Regs.Sp = Fp + FrameHeaderSlots + NArgs;
      if (!checkArity(*this, procName(Fn).c_str(), NArgs, N->MinArgs,
                      N->MaxArgs))
        return Dispatch::Done;
      NativeTailCall = true;
      NativeJumped = false;
      Value Res = N->Fn(*this, Slots + Fp + FrameHeaderSlots, NArgs);
      NativeTailCall = false;
      if (Failed)
        return Dispatch::Done;
      if (PendingCall) {
        PendingCall = false;
        if (NativeJumped) {
          // The native replaced the continuation; run the scheduled call
          // in the new context instead of reusing the dead frame.
          uint32_t Hdr = buildPendingFrame(*this);
          return dispatchSlowCall(Hdr,
                                  static_cast<uint32_t>(PendingArgs.size()));
        }
        Slots = asStackSeg(Regs.Seg)->Slots;
        Fp = Regs.Fp;
        NArgs = static_cast<uint32_t>(PendingArgs.size());
        Slots[Fp + 3] = PendingFn;
        for (uint32_t I = 0; I < NArgs; ++I)
          Slots[Fp + FrameHeaderSlots + I] = PendingArgs[I];
        Regs.Sp = Fp + FrameHeaderSlots + NArgs;
        continue;
      }
      if (NativeJumped)
        return Dispatch::Done;
      return returnFromFrame(*this, Res);
    }

    if (Fn.isCont()) {
      if (NArgs != 1) {
        raiseError("continuation expects 1 argument");
        return Dispatch::Done;
      }
      Value Arg = Slots[Fp + FrameHeaderSlots];
      applyContinuation(Fn, Arg);
      return Dispatch::Done;
    }

    if (Fn.isCompositeCont()) {
      if (NArgs != 1) {
        raiseError("composable continuation expects 1 argument");
        return Dispatch::Done;
      }
      Value Arg = Slots[Fp + FrameHeaderSlots];
      applyCompositeCont(*this, Fn, Arg, /*TailMode=*/true);
      return Dispatch::Done;
    }

    if (Fn.isParameter()) {
      if (NArgs != 0) {
        raiseError("parameter accepts no arguments");
        return Dispatch::Done;
      }
      Value Res = parameterLookup(*this, Fn);
      if (Failed)
        return Dispatch::Done;
      return returnFromFrame(*this, Res);
    }

    raiseError("application of non-procedure: " + writeToString(Fn));
    return Dispatch::Done;
  }
}
