//===- reader/reader.h - S-expression reader ------------------*- C++ -*-===//
///
/// \file
/// Reads the textual Scheme subset accepted by cmarks into runtime values.
/// Supports fixnums, flonums, strings, characters, booleans, symbols,
/// proper/dotted lists, vectors, quote/quasiquote sugar, line comments,
/// block comments (#| |#), and datum comments (#;).
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_READER_READER_H
#define CMARKS_READER_READER_H

#include "runtime/value.h"

#include <string>
#include <vector>

namespace cmk {

class Heap;

/// Outcome of a read: either a datum, end-of-input, or a syntax error with
/// a human-readable message and position.
struct ReadResult {
  enum class Status { Datum, Eof, Error } St;
  Value Datum;
  std::string Error;
  int Line = 0;

  bool isDatum() const { return St == Status::Datum; }
  bool isEof() const { return St == Status::Eof; }
  bool isError() const { return St == Status::Error; }
};

/// Incremental reader over an in-memory buffer.
class Reader {
public:
  Reader(Heap &H, std::string Source);

  /// Reads the next datum.
  ReadResult read();

  /// Reads every remaining datum; stops at the first error.
  std::vector<Value> readAll(std::string *ErrorOut = nullptr);

private:
  ReadResult readDatum();
  ReadResult readListTail(char Closer);
  ReadResult readHash();
  ReadResult readString();
  ReadResult atomFromToken(const std::string &Tok);
  ReadResult errorResult(const std::string &Msg);

  void skipAtmosphere();
  bool atEof() const { return Pos >= Src.size(); }
  char peek() const { return Src[Pos]; }
  char advance();

  Heap &H;
  std::string Src;
  size_t Pos = 0;
  int Line = 1;
};

/// One-shot convenience: parses all data in \p Source.
std::vector<Value> readAllFromString(Heap &H, const std::string &Source,
                                     std::string *ErrorOut = nullptr);

} // namespace cmk

#endif // CMARKS_READER_READER_H
