//===- reader/reader.cpp --------------------------------------*- C++ -*-===//

#include "reader/reader.h"

#include "runtime/heap.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

using namespace cmk;

static bool isDelimiter(char C) {
  return std::isspace(static_cast<unsigned char>(C)) || C == '(' || C == ')' ||
         C == '[' || C == ']' || C == '"' || C == ';';
}

Reader::Reader(Heap &H, std::string Source) : H(H), Src(std::move(Source)) {}

char Reader::advance() {
  char C = Src[Pos++];
  if (C == '\n')
    ++Line;
  return C;
}

void Reader::skipAtmosphere() {
  while (!atEof()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == ';') {
      while (!atEof() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '#' && Pos + 1 < Src.size() && Src[Pos + 1] == '|') {
      advance();
      advance();
      int Depth = 1;
      while (!atEof() && Depth > 0) {
        char D = advance();
        if (D == '#' && !atEof() && peek() == '|') {
          advance();
          ++Depth;
        } else if (D == '|' && !atEof() && peek() == '#') {
          advance();
          --Depth;
        }
      }
      continue;
    }
    if (C == '#' && Pos + 1 < Src.size() && Src[Pos + 1] == ';') {
      advance();
      advance();
      // Datum comment: read and discard the next datum.
      ReadResult Ignored = readDatum();
      (void)Ignored;
      continue;
    }
    break;
  }
}

ReadResult Reader::errorResult(const std::string &Msg) {
  return {ReadResult::Status::Error, Value::undefined(), Msg, Line};
}

ReadResult Reader::read() {
  skipAtmosphere();
  if (atEof())
    return {ReadResult::Status::Eof, Value::undefined(), "", Line};
  return readDatum();
}

ReadResult Reader::readDatum() {
  skipAtmosphere();
  if (atEof())
    return errorResult("unexpected end of input");

  char C = peek();
  if (C == '(' || C == '[') {
    advance();
    return readListTail(C == '(' ? ')' : ']');
  }
  if (C == ')' || C == ']')
    return errorResult("unexpected close parenthesis");
  if (C == '"') {
    advance();
    return readString();
  }
  if (C == '#') {
    advance();
    return readHash();
  }
  if (C == '\'' || C == '`' || C == ',') {
    advance();
    const char *Sym = "quote";
    if (C == '`') {
      Sym = "quasiquote";
    } else if (C == ',') {
      if (!atEof() && peek() == '@') {
        advance();
        Sym = "unquote-splicing";
      } else {
        Sym = "unquote";
      }
    }
    ReadResult Inner = readDatum();
    if (!Inner.isDatum())
      return Inner.isEof() ? errorResult("unexpected end after quote") : Inner;
    GCRoot InnerRoot(H, Inner.Datum);
    Value Tail = H.makePair(InnerRoot.get(), Value::nil());
    GCRoot TailRoot(H, Tail);
    Value SymV = H.intern(Sym);
    Value Datum = H.makePair(SymV, TailRoot.get());
    return {ReadResult::Status::Datum, Datum, "", Line};
  }

  // Token: number or symbol.
  std::string Tok;
  while (!atEof() && !isDelimiter(peek()))
    Tok += advance();
  if (Tok.empty())
    return errorResult("empty token");
  return atomFromToken(Tok);
}

ReadResult Reader::atomFromToken(const std::string &Tok) {
  // Try fixnum.
  if (Tok.find_first_not_of("0123456789+-") == std::string::npos &&
      Tok != "+" && Tok != "-" && Tok.find_first_of("0123456789") !=
                                      std::string::npos &&
      Tok.find('+', 1) == std::string::npos &&
      Tok.find('-', 1) == std::string::npos) {
    errno = 0;
    char *End = nullptr;
    long long N = std::strtoll(Tok.c_str(), &End, 10);
    if (errno == 0 && End == Tok.c_str() + Tok.size() && fitsFixnum(N))
      return {ReadResult::Status::Datum, Value::fixnum(N), "", Line};
  }
  // Try flonum: must contain '.', 'e', or be inf/nan spelled +inf.0 style.
  bool LooksNumeric = std::isdigit(static_cast<unsigned char>(Tok[0])) ||
                      ((Tok[0] == '+' || Tok[0] == '-') && Tok.size() > 1 &&
                       (std::isdigit(static_cast<unsigned char>(Tok[1])) ||
                        Tok[1] == '.' || Tok[1] == 'i' || Tok[1] == 'n')) ||
                      (Tok[0] == '.' && Tok.size() > 1 &&
                       std::isdigit(static_cast<unsigned char>(Tok[1])));
  if (LooksNumeric) {
    if (Tok == "+inf.0")
      return {ReadResult::Status::Datum, H.makeFlonum(HUGE_VAL), "", Line};
    if (Tok == "-inf.0")
      return {ReadResult::Status::Datum, H.makeFlonum(-HUGE_VAL), "", Line};
    if (Tok == "+nan.0" || Tok == "-nan.0")
      return {ReadResult::Status::Datum, H.makeFlonum(NAN), "", Line};
    errno = 0;
    char *End = nullptr;
    double D = std::strtod(Tok.c_str(), &End);
    if (errno == 0 && End == Tok.c_str() + Tok.size())
      return {ReadResult::Status::Datum, H.makeFlonum(D), "", Line};
    return errorResult("malformed number: " + Tok);
  }
  return {ReadResult::Status::Datum, H.intern(Tok), "", Line};
}

ReadResult Reader::readListTail(char Closer) {
  // Accumulate elements, then build the list back-to-front so only the
  // result list needs rooting.
  RootedValues Elems(H);
  Value TailDatum = Value::nil();
  bool Dotted = false;

  for (;;) {
    skipAtmosphere();
    if (atEof())
      return errorResult("unterminated list");
    char C = peek();
    if (C == ')' || C == ']') {
      advance();
      if ((C == ')') != (Closer == ')'))
        return errorResult("mismatched bracket");
      break;
    }
    if (C == '.' && Pos + 1 < Src.size() && isDelimiter(Src[Pos + 1]) &&
        !Elems.size()) {
      return errorResult("dot at start of list");
    }
    if (C == '.' && Pos + 1 < Src.size() && isDelimiter(Src[Pos + 1])) {
      advance();
      ReadResult Tail = readDatum();
      if (!Tail.isDatum())
        return Tail.isEof() ? errorResult("unterminated dotted list") : Tail;
      TailDatum = Tail.Datum;
      Dotted = true;
      skipAtmosphere();
      if (atEof() || (peek() != ')' && peek() != ']'))
        return errorResult("expected close after dotted tail");
      advance();
      break;
    }
    ReadResult Elem = readDatum();
    if (!Elem.isDatum())
      return Elem.isEof() ? errorResult("unterminated list") : Elem;
    Elems.push(Elem.Datum);
  }

  GCRoot Acc(H, TailDatum);
  (void)Dotted;
  for (size_t I = Elems.size(); I > 0; --I)
    Acc.set(H.makePair(Elems[I - 1], Acc.get()));
  return {ReadResult::Status::Datum, Acc.get(), "", Line};
}

ReadResult Reader::readString() {
  std::string Out;
  for (;;) {
    if (atEof())
      return errorResult("unterminated string");
    char C = advance();
    if (C == '"')
      break;
    if (C == '\\') {
      if (atEof())
        return errorResult("unterminated escape");
      char E = advance();
      switch (E) {
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case '\\':
        Out += '\\';
        break;
      case '"':
        Out += '"';
        break;
      default:
        Out += E;
        break;
      }
      continue;
    }
    Out += C;
  }
  return {ReadResult::Status::Datum, H.makeString(Out), "", Line};
}

ReadResult Reader::readHash() {
  if (atEof())
    return errorResult("unexpected end after #");
  char C = advance();
  if (C == 't')
    return {ReadResult::Status::Datum, Value::True(), "", Line};
  if (C == 'f')
    return {ReadResult::Status::Datum, Value::False(), "", Line};
  if (C == '(') {
    ReadResult ListR = readListTail(')');
    if (!ListR.isDatum())
      return ListR;
    GCRoot ListRoot(H, ListR.Datum);
    int64_t N = listLength(ListRoot.get());
    if (N < 0)
      return errorResult("dotted list in vector literal");
    Value Vec = H.makeVector(static_cast<uint32_t>(N), Value::undefined());
    Value P = ListRoot.get();
    for (int64_t I = 0; I < N; ++I) {
      asVector(Vec)->Elems[I] = car(P);
      P = cdr(P);
    }
    return {ReadResult::Status::Datum, Vec, "", Line};
  }
  if (C == '%') {
    // #%-prefixed symbols name low-level primitives.
    std::string Name = "#%";
    while (!atEof() && !isDelimiter(peek()))
      Name += advance();
    return {ReadResult::Status::Datum, H.intern(Name), "", Line};
  }
  if (C == '\\') {
    // Character literal.
    std::string Name;
    if (atEof())
      return errorResult("unexpected end after #\\");
    Name += advance();
    while (!atEof() && !isDelimiter(peek()))
      Name += advance();
    if (Name.size() == 1)
      return {ReadResult::Status::Datum,
              Value::character(static_cast<unsigned char>(Name[0])), "", Line};
    if (Name == "space")
      return {ReadResult::Status::Datum, Value::character(' '), "", Line};
    if (Name == "newline" || Name == "linefeed")
      return {ReadResult::Status::Datum, Value::character('\n'), "", Line};
    if (Name == "tab")
      return {ReadResult::Status::Datum, Value::character('\t'), "", Line};
    if (Name == "return")
      return {ReadResult::Status::Datum, Value::character('\r'), "", Line};
    if (Name == "nul" || Name == "null")
      return {ReadResult::Status::Datum, Value::character(0), "", Line};
    return errorResult("unknown character literal: #\\" + Name);
  }
  return errorResult(std::string("unsupported # syntax: #") + C);
}

std::vector<Value> Reader::readAll(std::string *ErrorOut) {
  // Keep GC off so earlier data stay live while later ones are read; the
  // caller must root the results before the next allocation-heavy step.
  GCPauseScope Pause(H);
  std::vector<Value> Out;
  for (;;) {
    ReadResult R = read();
    if (R.isEof())
      return Out;
    if (R.isError()) {
      if (ErrorOut)
        *ErrorOut = R.Error + " (line " + std::to_string(R.Line) + ")";
      return Out;
    }
    Out.push_back(R.Datum);
  }
}

std::vector<Value> cmk::readAllFromString(Heap &H, const std::string &Source,
                                          std::string *ErrorOut) {
  Reader R(H, Source);
  return R.readAll(ErrorOut);
}
